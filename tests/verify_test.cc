// The concurrency verifier: schedule-string plumbing and the lock-order
// graph (all builds), the BuildCache failure-propagation and eviction
// race regressions (real threads, all builds), and — when compiled with
// -DPUMP_VERIFY=ON — the explorer itself: deadlock detection, replay
// determinism, and sleep-set pruning on toy models.

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/cancel.h"
#include "engine/table.h"
#include "gtest/gtest.h"
#include "plan/build_cache.h"
#include "plan/operators.h"
#include "verify/explore.h"
#include "verify/lock_order.h"
#include "verify/sync.h"

namespace pump {
namespace {

// ---------------------------------------------------------------------
// Schedule strings (all builds).

TEST(ScheduleStringTest, RoundTrips) {
  const std::vector<int> choices = {0, 1, 1, 0, 2};
  const std::string text = verify::ScheduleToString(choices);
  EXPECT_EQ(text, "0.1.1.0.2");
  std::vector<int> parsed;
  ASSERT_TRUE(verify::ParseSchedule(text, &parsed));
  EXPECT_EQ(parsed, choices);
}

TEST(ScheduleStringTest, EmptyAndInvalid) {
  std::vector<int> parsed;
  EXPECT_TRUE(verify::ParseSchedule("", &parsed));
  EXPECT_TRUE(parsed.empty());
  EXPECT_TRUE(verify::ParseSchedule("7", &parsed));
  EXPECT_EQ(parsed, std::vector<int>{7});
  EXPECT_FALSE(verify::ParseSchedule("0..1", &parsed));
  EXPECT_FALSE(verify::ParseSchedule("0.x", &parsed));
  EXPECT_FALSE(verify::ParseSchedule(".0", &parsed));
}

// ---------------------------------------------------------------------
// Lock-order graph (all builds).

TEST(LockOrderGraphTest, AcyclicChain) {
  verify::LockOrderGraph graph;
  graph.AddEdge("a", "b");
  graph.AddEdge("b", "c");
  graph.AddEdge("a", "c");
  EXPECT_FALSE(graph.HasCycle(nullptr));
  EXPECT_EQ(graph.node_count(), 3u);
  EXPECT_EQ(graph.edge_count(), 3u);
}

TEST(LockOrderGraphTest, DetectsCycleWithoutDeadlock) {
  // The whole point of class-level lock ordering: a->b in one place and
  // b->a in another is flagged even though no schedule deadlocked.
  verify::LockOrderGraph graph;
  graph.AddEdge("a", "b");
  graph.AddEdge("b", "a");
  std::vector<std::string> cycle;
  EXPECT_TRUE(graph.HasCycle(&cycle));
  EXPECT_GE(cycle.size(), 2u);
}

TEST(LockOrderGraphTest, DedupesEdgesAndSerializes) {
  verify::LockOrderGraph graph;
  graph.AddClass("solo");
  graph.AddEdge("a", "b");
  graph.AddEdge("a", "b");
  EXPECT_EQ(graph.edge_count(), 1u);
  const std::string json = graph.ToJson();
  EXPECT_NE(json.find("\"acyclic\":true"), std::string::npos);
  EXPECT_NE(json.find("\"solo\""), std::string::npos);
  EXPECT_NE(json.find("{\"from\":\"a\",\"to\":\"b\"}"), std::string::npos);
}

// ---------------------------------------------------------------------
// Shim transparency: normal builds must alias the std:: primitives
// exactly (the ≤1% overhead bound holds by construction).

#if !defined(PUMP_VERIFY) || !PUMP_VERIFY
static_assert(std::is_same_v<verify::Mutex, std::mutex>);
static_assert(std::is_same_v<verify::CondVar, std::condition_variable>);
static_assert(std::is_same_v<verify::Atomic<int>, std::atomic<int>>);
static_assert(std::is_same_v<verify::Thread, std::thread>);
#endif

TEST(VerifyShimTest, InvariantMacroCompilesOut) {
  // In normal builds the macro must evaluate nothing at runtime (the
  // condition is only sizeof'd) yet still typecheck it.
  int evaluations = 0;
  auto probe = [&] {
    ++evaluations;
    return true;
  };
#if !defined(PUMP_VERIFY) || !PUMP_VERIFY
  VERIFY_INVARIANT(probe(), "never evaluated in normal builds");
  EXPECT_EQ(evaluations, 0);
#else
  VERIFY_INVARIANT(probe(), "evaluated under the verifier");
  EXPECT_EQ(evaluations, 1);
#endif
}

// ---------------------------------------------------------------------
// BuildCache failure propagation and eviction races (real threads; runs
// in every build — the model checker covers the same protocols
// schedule-exhaustively under PUMP_VERIFY).

plan::BuildPipeline PipelineFor(const engine::Table& dim) {
  plan::BuildPipeline build;
  build.dimension = &dim;
  build.key_column = "pk";
  build.table_kind = plan::HashTableKind::kLinearProbing;
  build.keys.rows = dim.rows();
  build.table_bytes = 64;
  return build;
}

TEST(BuildCacheFailureTest, FailurePropagatesToEveryConcurrentWaiter) {
  engine::Table poison;
  ASSERT_TRUE(poison.AddColumn("pk", {0, 1, 1}).ok());
  const plan::BuildPipeline build = PipelineFor(poison);

  plan::BuildCache cache(1 << 20);
  constexpr int kThreads = 8;
  std::vector<Status> statuses(kThreads, Status::OK());
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        statuses[t] = cache.GetOrBuild(build).status();
      });
    }
    for (std::thread& thread : threads) thread.join();
  }
  for (const Status& status : statuses) {
    // Every requester gets the builder's real error — never OK, never
    // the in-flight placeholder.
    EXPECT_EQ(status.code(), StatusCode::kAlreadyExists) << status;
  }
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(BuildCacheFailureTest, FailedBuildClearsSlotForRetry) {
  engine::Table poison;
  ASSERT_TRUE(poison.AddColumn("pk", {0, 0}).ok());
  plan::BuildCache cache(1 << 20);
  const plan::BuildPipeline build = PipelineFor(poison);
  EXPECT_FALSE(cache.GetOrBuild(build).ok());
  // The retry is a fresh single-flight build, not a poisoned hit.
  EXPECT_EQ(cache.GetOrBuild(build).status().code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(BuildCacheEvictionTest, ConcurrentInsertsStayWithinCapacity) {
  // Many distinct keys racing into a cache with room for exactly one
  // entry: every build succeeds, handles stay valid, and residency never
  // exceeds capacity whatever the eviction interleaving.
  constexpr int kTables = 6;
  std::vector<std::unique_ptr<engine::Table>> dims;
  for (int i = 0; i < kTables; ++i) {
    auto dim = std::make_unique<engine::Table>();
    ASSERT_TRUE(
        dim->AddColumn("pk", {i * 10, i * 10 + 1, i * 10 + 2}).ok());
    dims.push_back(std::move(dim));
  }
  plan::BuildCache cache(64);
  std::vector<Result<std::shared_ptr<const plan::DimensionTable>>> results(
      kTables, Status::Internal("unset"));
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < kTables; ++t) {
      threads.emplace_back([&, t] {
        results[t] = cache.GetOrBuild(PipelineFor(*dims[t]));
      });
    }
    for (std::thread& thread : threads) thread.join();
  }
  for (int t = 0; t < kTables; ++t) {
    ASSERT_TRUE(results[t].ok()) << results[t].status();
    // Evicted or resident, the handle keeps the table alive and usable.
    EXPECT_TRUE(results[t].value()->Contains(t * 10));
  }
  const plan::BuildCache::Stats stats = cache.stats();
  EXPECT_LE(stats.resident_bytes, cache.capacity_bytes());
  EXPECT_LE(stats.entries, 1u);
  EXPECT_GE(stats.evictions, static_cast<std::uint64_t>(kTables) - 1);
}

// ---------------------------------------------------------------------
// Explorer behaviour on toy models (verify builds only).

#if defined(PUMP_VERIFY) && PUMP_VERIFY

TEST(ExplorerTest, FindsAbBaDeadlockAndReplaysIt) {
  auto body = [] {
    verify::Mutex a;
    verify::Mutex b;
    verify::NamedMutex(&a, "toy.a");
    verify::NamedMutex(&b, "toy.b");
    verify::Thread other([&] {
      std::lock_guard<verify::Mutex> lock_b(b);
      std::lock_guard<verify::Mutex> lock_a(a);
    });
    {
      std::lock_guard<verify::Mutex> lock_a(a);
      std::lock_guard<verify::Mutex> lock_b(b);
    }
    other.join();
  };
  verify::ExploreOptions options;
  options.max_schedules = 500;
  verify::LockOrderGraph lock_order;
  verify::ExploreResult result =
      verify::Explore(body, options, &lock_order);
  EXPECT_TRUE(result.failed);
  EXPECT_TRUE(result.deadlocked);
  ASSERT_FALSE(result.failing_schedule.empty());

  // The lock-order graph names the inversion even in schedules that did
  // not deadlock.
  std::vector<std::string> cycle;
  EXPECT_TRUE(lock_order.HasCycle(&cycle));

  // Deterministic replay: the printed schedule reproduces the deadlock.
  verify::RunOutcome replayed =
      verify::Replay(body, result.failing_schedule);
  EXPECT_TRUE(replayed.failed);
  EXPECT_TRUE(replayed.deadlocked);
  EXPECT_EQ(verify::ScheduleToString(replayed.choices),
            result.failing_schedule);
}

TEST(ExplorerTest, ExhaustsTinyTreeAndPrunesIndependentOps) {
  // Two threads touching DIFFERENT atomics commute everywhere: sleep
  // sets must prune at least one of the interleavings.
  auto body = [] {
    verify::Atomic<int> x{0};
    verify::Atomic<int> y{0};
    verify::Thread other([&] { y.store(1); });
    x.store(1);
    other.join();
  };
  verify::ExploreOptions options;
  options.max_schedules = 10'000;
  verify::ExploreResult result = verify::Explore(body, options, nullptr);
  EXPECT_FALSE(result.failed) << result.failure;
  EXPECT_TRUE(result.exhausted);
  EXPECT_GE(result.schedules_explored, 1u);
  EXPECT_GE(result.schedules_pruned, 1u);
}

TEST(ExplorerTest, DistinguishesDependentOps) {
  // Two writers to the SAME atomic do not commute: both orders must be
  // executed, and the final value depends on the schedule.
  auto body = [] {
    verify::Atomic<int> x{0};
    verify::Thread other([&] { x.store(1); });
    x.store(2);
    other.join();
    const int last = x.load();
    VERIFY_INVARIANT(last == 1 || last == 2, "lost store");
  };
  verify::ExploreOptions options;
  options.max_schedules = 10'000;
  verify::ExploreResult result = verify::Explore(body, options, nullptr);
  EXPECT_FALSE(result.failed) << result.failure;
  EXPECT_TRUE(result.exhausted);
  EXPECT_GE(result.schedules_explored, 2u);
}

TEST(ExplorerTest, CancelTokenModelExploresBothLatchOrders) {
  auto body = [] {
    CancelToken token;
    verify::Thread other([&] { token.Cancel(); });
    (void)token.Cancelled();
    other.join();
    VERIFY_INVARIANT(token.Cancelled(), "cancel lost");
  };
  verify::ExploreOptions options;
  options.max_schedules = 5'000;
  verify::ExploreResult result = verify::Explore(body, options, nullptr);
  EXPECT_FALSE(result.failed) << result.failure;
  EXPECT_GE(result.schedules_explored, 2u);
}

#endif  // PUMP_VERIFY

}  // namespace
}  // namespace pump
