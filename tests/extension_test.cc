// Tests for the extension features beyond the paper's evaluation:
// direct GPU meshes, skew-aware placement, and result materialization.

#include <algorithm>
#include <set>

#include "common/units.h"
#include "data/generator.h"
#include "data/workloads.h"
#include "gtest/gtest.h"
#include "hw/system_profile.h"
#include "join/coprocess.h"
#include "join/cost_model.h"
#include "join/nopa.h"

namespace pump {
namespace {

using join::HashTablePlacement;
using join::NopaConfig;
using join::NopaJoinModel;

TEST(DirectGpuMeshTest, TopologyShape) {
  const hw::Topology mesh = hw::DirectGpuMesh(4);
  EXPECT_EQ(mesh.device_count(), 5u);
  EXPECT_EQ(mesh.DevicesOfKind(hw::DeviceKind::kGpu).size(), 4u);
  // 4 host links + C(4,2) = 6 peer links.
  EXPECT_EQ(mesh.edges().size(), 10u);
  // Every GPU reaches every other GPU in one hop.
  for (hw::DeviceId a = 1; a <= 4; ++a) {
    for (hw::DeviceId b = 1; b <= 4; ++b) {
      if (a == b) continue;
      EXPECT_EQ(mesh.FindRoute(a, b).value().hops(), 1u);
    }
  }
}

TEST(DirectGpuMeshTest, PeerRandomAccessSkipsNpu) {
  // Peer NVLink random accesses are sector-bandwidth-bound, not NPU-bound:
  // a 1-link peer bundle must beat the NPU-limited GPU->CPU rate scaled
  // to one link.
  const hw::LinkSpec peer = hw::Nvlink2Bundle(1);
  const hw::LinkSpec host = hw::Nvlink2x3();
  EXPECT_GT(peer.random_access_rate.per_second(),
            host.random_access_rate.per_second() / 3.0 * 1.5);
  EXPECT_NEAR(peer.seq_bw.gib_per_second(),
              host.seq_bw.gib_per_second() / 3.0, 1.0);
}

TEST(DirectGpuMeshTest, InterleavingScalesOnMesh) {
  // Sec. 6.3's proposal works once GPUs are directly meshed: 4 GPUs beat
  // 2 GPUs beat the single-GPU hybrid table for an out-of-core build.
  const data::WorkloadSpec big =
      data::WorkloadC16(1536ull << 20, 1536ull << 20);
  auto interleaved = [&](int gpus) {
    hw::SystemProfile profile;
    profile.topology = hw::DirectGpuMesh(gpus);
    const join::CoProcessModel model(&profile);
    join::CoProcessConfig config;
    config.cpu = 0;
    config.gpu = 1;
    config.data_location = 0;
    for (int g = 2; g <= gpus; ++g) config.extra_gpus.push_back(g);
    return model
        .Estimate(join::ExecutionStrategy::kMultiGpu, config, big)
        .value()
        .Throughput(static_cast<double>(big.total_tuples()));
  };
  const PerSecond two = interleaved(2);
  const PerSecond four = interleaved(4);
  EXPECT_GT(four.per_second(), 1.4 * two.per_second());
}

TEST(SkewAwarePlacementTest, BeatsAddressSplitUnderSkew) {
  // Placing the *hottest* entries on the GPU (instead of an address-based
  // split) concentrates Zipf mass on the fast part.
  const hw::SystemProfile ibm = hw::Ac922Profile();
  const NopaJoinModel model(&ibm);
  data::WorkloadSpec w = data::WorkloadA();
  w.zipf_exponent = 1.0;

  const HashTablePlacement address_split =
      HashTablePlacement::Hybrid(hw::kGpu0, hw::kCpu0, 0.25);
  const HashTablePlacement skew_aware = HashTablePlacement::SkewAware(
      hw::kGpu0, hw::kCpu0, 0.25, w.r_tuples, w.zipf_exponent);

  const PerSecond plain =
      model.HashTableAccessRate(hw::kGpu0, address_split, w);
  const PerSecond aware =
      model.HashTableAccessRate(hw::kGpu0, skew_aware, w);
  EXPECT_GT(aware.per_second(), 1.5 * plain.per_second());
}

TEST(SkewAwarePlacementTest, DegeneratesToUniformWithoutSkew) {
  const HashTablePlacement aware = HashTablePlacement::SkewAware(
      hw::kGpu0, hw::kCpu0, 0.3, 1u << 27, /*zipf_exponent=*/0.0);
  ASSERT_EQ(aware.parts.size(), 2u);
  EXPECT_NEAR(aware.parts[0].fraction, 0.3, 1e-6);
}

TEST(SkewAwarePlacementTest, FullGpuIsIdentity) {
  const HashTablePlacement aware = HashTablePlacement::SkewAware(
      hw::kGpu0, hw::kCpu0, 1.0, 1u << 27, 1.5);
  ASSERT_EQ(aware.parts.size(), 1u);
  EXPECT_EQ(aware.parts[0].node, hw::kGpu0);
}

TEST(MaterializeTest, FunctionalOutputMatchesAggregate) {
  const std::size_t n = 1 << 12;
  const auto inner = data::GenerateInner<std::int64_t, std::int64_t>(n, 3);
  const auto outer = data::GenerateOuterSelective<std::int64_t,
                                                  std::int64_t>(
      30000, n, 0.4, 4);
  hash::PerfectHashTable<std::int64_t, std::int64_t> table(n);
  ASSERT_TRUE(join::BuildPhase(&table, inner, 1).ok());

  const auto rows = join::ProbeMaterialize(table, outer, 3);
  const join::JoinAggregate aggregate = join::ProbePhase(table, outer, 1);
  EXPECT_EQ(rows.size(), aggregate.matches);
  std::uint64_t sum = 0;
  for (const auto& row : rows) {
    EXPECT_EQ(row.inner_payload, row.key + data::kPayloadOffset);
    sum += static_cast<std::uint64_t>(row.inner_payload);
  }
  EXPECT_EQ(sum, aggregate.payload_sum);
}

TEST(MaterializeTest, WorkerCountDoesNotChangeMultiset) {
  const std::size_t n = 1 << 12;
  const auto inner = data::GenerateInner<std::int64_t, std::int64_t>(n, 5);
  const auto outer = data::GenerateOuterUniform<std::int64_t, std::int64_t>(
      20000, n, 6);
  hash::PerfectHashTable<std::int64_t, std::int64_t> table(n);
  ASSERT_TRUE(join::BuildPhase(&table, inner, 1).ok());

  auto canonical = [&](std::size_t workers) {
    auto rows = join::ProbeMaterialize(table, outer, workers);
    std::sort(rows.begin(), rows.end(),
              [](const auto& a, const auto& b) {
                return std::tie(a.key, a.outer_payload) <
                       std::tie(b.key, b.outer_payload);
              });
    return rows;
  };
  EXPECT_EQ(canonical(1), canonical(4));
}

TEST(MaterializeTest, ModelChargesResultStream) {
  // Materializing a fully matching out-of-core join writes 24 B per match
  // back over the link; the modelled probe must slow down accordingly.
  const hw::SystemProfile ibm = hw::Ac922Profile();
  const NopaJoinModel model(&ibm);
  const data::WorkloadSpec w = data::WorkloadA();

  NopaConfig config;
  config.device = hw::kGpu0;
  config.r_location = hw::kCpu0;
  config.s_location = hw::kCpu0;
  config.hash_table = HashTablePlacement::Single(hw::kGpu0);
  const Seconds aggregate_s =
      model.Estimate(config, w).value().probe_s;
  config.materialize_result = true;
  const Seconds materialize_s =
      model.Estimate(config, w).value().probe_s;
  EXPECT_GT(materialize_s.seconds(), aggregate_s.seconds());
  // Full-duplex links overlap the write-back, so the penalty is bounded.
  EXPECT_LT(materialize_s.seconds(), 2.0 * aggregate_s.seconds());
}

}  // namespace
}  // namespace pump
