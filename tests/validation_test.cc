// Model-validation tests: independent mechanisms (discrete-event
// simulation, LRU cache simulation, instrumented functional probes)
// cross-check the closed-form models the benchmark binaries rely on.

#include <cstdint>

#include "common/rng.h"
#include "common/units.h"
#include "data/generator.h"
#include "data/zipf.h"
#include "gtest/gtest.h"
#include "hash/hybrid_table.h"
#include "hw/system_profile.h"
#include "join/instrumented.h"
#include "memory/allocator.h"
#include "sim/cache_model.h"
#include "sim/event_sim.h"
#include "sim/lru.h"
#include "transfer/transfer_model.h"

namespace pump {
namespace {

// -----------------------------------------------------------------------
// Discrete-event simulation vs closed-form pipeline makespan.

TEST(EventSimTest, MatchesClosedFormSingleStage) {
  sim::PipelineEventSimulator des;
  std::vector<transfer::PipelineStage> stages = {
      {"copy", BytesPerSecond(100.0), Seconds(0.0)}};
  const auto timeline = des.Simulate(stages, 100.0, 10.0);
  EXPECT_NEAR(
      timeline.makespan_s,
      transfer::PipelineMakespan(stages, Bytes(100.0), Bytes(10.0)).seconds(),
      1e-9);
}

TEST(EventSimTest, MatchesClosedFormMultiStage) {
  sim::PipelineEventSimulator des;
  std::vector<transfer::PipelineStage> stages = {
      {"stage", BytesPerSecond(200.0), Seconds(0.001)},
      {"dma", BytesPerSecond(100.0), Seconds(0.0)},
      {"kernel", BytesPerSecond(400.0), Seconds(0.002)}};
  for (double total : {50.0, 100.0, 1000.0}) {
    for (double chunk : {10.0, 25.0, 100.0}) {
      const auto timeline = des.Simulate(stages, total, chunk);
      const double closed =
          transfer::PipelineMakespan(stages, Bytes(total), Bytes(chunk))
              .seconds();
      // The closed form assumes equal chunks; the DES models the short
      // tail chunk, so allow one chunk of slack.
      EXPECT_NEAR(timeline.makespan_s, closed, closed * 0.05)
          << "total=" << total << " chunk=" << chunk;
    }
  }
}

TEST(EventSimTest, ChunkCompletionsAreMonotone) {
  sim::PipelineEventSimulator des;
  std::vector<transfer::PipelineStage> stages = {
      {"a", BytesPerSecond(50.0), Seconds(0.0)},
      {"b", BytesPerSecond(75.0), Seconds(0.0)}};
  const auto timeline = des.Simulate(stages, 100.0, 10.0);
  ASSERT_EQ(timeline.chunk_completion_s.size(), 10u);
  for (std::size_t i = 1; i < timeline.chunk_completion_s.size(); ++i) {
    EXPECT_GT(timeline.chunk_completion_s[i],
              timeline.chunk_completion_s[i - 1]);
  }
}

TEST(EventSimTest, RealTransferPipelinesAgree) {
  // The actual modelled pipelines (Staged Copy, Dynamic Pinning, ...)
  // must have DES makespans close to the closed-form model used by the
  // figure benches.
  const hw::SystemProfile profile = hw::Ac922Profile();
  const transfer::TransferModel model(&profile);
  sim::PipelineEventSimulator des;
  for (transfer::TransferMethod method : transfer::kAllTransferMethods) {
    auto stages = model.BuildPipeline(method, hw::kGpu0, hw::kCpu0);
    ASSERT_TRUE(stages.ok());
    const Bytes total = Bytes::GiB(2);
    const Bytes chunk = transfer::kDefaultChunkBytes;
    const double closed =
        transfer::PipelineMakespan(stages.value(), total, chunk).seconds();
    const double simulated =
        des.Simulate(stages.value(), total.bytes(), chunk.bytes())
            .makespan_s;
    EXPECT_NEAR(simulated, closed, closed * 0.05)
        << transfer::TransferMethodToString(method);
  }
}

TEST(JoinPhaseSimTest, BracketsOverlapNorm) {
  // The DES of the probe phase must land between perfect overlap (max)
  // and no overlap (sum), like the overlap norm does.
  sim::JoinPhaseSim des;
  des.ingest_bw = 63.0 * kGiB;
  des.ht_rate = 4.5e9;
  des.chunk_tuples = 1 << 22;
  const double tuples = 2e9;
  const double stream_s = tuples * 16.0 / des.ingest_bw;
  const double lookup_s = tuples / des.ht_rate;
  const double simulated = des.Simulate(tuples, 16.0);
  EXPECT_GE(simulated, std::max(stream_s, lookup_s));
  EXPECT_LE(simulated, stream_s + lookup_s + 1e-6);
}

TEST(JoinPhaseSimTest, FinerChunksOverlapBetter) {
  sim::JoinPhaseSim coarse;
  coarse.ingest_bw = 63.0 * kGiB;
  coarse.ht_rate = 4.5e9;
  coarse.chunk_tuples = 1e9;
  sim::JoinPhaseSim fine = coarse;
  fine.chunk_tuples = 1e7;
  const double tuples = 2e9;
  EXPECT_LT(fine.Simulate(tuples, 16.0), coarse.Simulate(tuples, 16.0));
}

// -----------------------------------------------------------------------
// LRU simulation vs analytic hit rates.

TEST(LruValidationTest, UniformStreamMatchesResidentFraction) {
  const std::uint64_t domain = 10'000;
  const std::size_t capacity = 2'500;
  sim::LruCacheSim cache(capacity);
  Rng rng(11);
  for (int i = 0; i < 200'000; ++i) cache.Access(rng.NextBounded(domain));
  cache.ResetStats();
  for (int i = 0; i < 400'000; ++i) cache.Access(rng.NextBounded(domain));
  EXPECT_NEAR(cache.HitRate(), sim::UniformHitRate(domain, capacity),
              0.02);
}

TEST(LruValidationTest, ZipfStreamNearAnalyticTopK) {
  // LRU under a stationary Zipf stream approaches the hottest-k hit rate
  // (it slightly exceeds it because recency correlates with hotness).
  const std::uint64_t domain = 1 << 20;
  const std::size_t capacity = 1'000;
  for (double z : {1.0, 1.5}) {
    sim::LruCacheSim cache(capacity);
    data::ZipfGenerator zipf(domain, z);
    Rng rng(13);
    for (int i = 0; i < 100'000; ++i) cache.Access(zipf.Next(rng) - 1);
    cache.ResetStats();
    for (int i = 0; i < 300'000; ++i) cache.Access(zipf.Next(rng) - 1);
    const double analytic = sim::ZipfHitRate(domain, capacity, z);
    // LRU tracks the hottest-k analytic rate closely under strong skew;
    // at mild skew recency churn costs some hits, so the analytic model
    // is an upper-ish bound (the cost model errs optimistic there).
    const double tolerance = z >= 1.5 ? 0.05 : 0.15;
    EXPECT_NEAR(cache.HitRate(), analytic, tolerance) << "z=" << z;
  }
}

TEST(LruValidationTest, ZeroCapacityNeverHits) {
  sim::LruCacheSim cache(0);
  EXPECT_FALSE(cache.Access(1));
  EXPECT_FALSE(cache.Access(1));
  EXPECT_EQ(cache.hits(), 0u);
}

TEST(LruValidationTest, RecencyEviction) {
  sim::LruCacheSim cache(2);
  cache.Access(1);
  cache.Access(2);
  cache.Access(1);      // 1 is now most recent.
  cache.Access(3);      // Evicts 2.
  EXPECT_TRUE(cache.Access(1));
  EXPECT_FALSE(cache.Access(2));
}

// -----------------------------------------------------------------------
// Instrumented functional probes vs the placement/access-share model.

class InstrumentedProbeTest : public ::testing::Test {
 protected:
  hw::Topology topo_ = hw::IbmAc922();
  memory::MemoryManager manager_{&topo_, /*materialize=*/true};
};

TEST_F(InstrumentedProbeTest, AccessShareMatchesGpuFraction) {
  // Sec. 5.3: under uniform keys, the expected fraction of hash-table
  // accesses served by GPU memory equals the table fraction stored there
  // (A_GPU). Measure it functionally.
  const std::size_t n = 1 << 16;
  const std::uint64_t gpu_capacity = topo_.memory(hw::kGpu0).capacity.u64();
  // Force ~60% of the table onto the GPU.
  auto table = hash::HybridHashTable<std::int64_t, std::int64_t>::Create(
      &manager_, hw::kGpu0, n,
      gpu_capacity - static_cast<std::uint64_t>(0.6 * n * 16));
  ASSERT_TRUE(table.ok());
  const double gpu_fraction = table.value().gpu_fraction();
  ASSERT_GT(gpu_fraction, 0.3);
  ASSERT_LT(gpu_fraction, 0.9);

  const auto inner = data::GenerateInner<std::int64_t, std::int64_t>(n, 3);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(
        table.value().table().Insert(inner.keys[i], inner.payloads[i]).ok());
  }
  const auto outer = data::GenerateOuterUniform<std::int64_t, std::int64_t>(
      200'000, n, 5);
  const join::ProbeTrace trace =
      join::InstrumentedProbe(table.value(), outer);
  EXPECT_EQ(trace.matches, outer.size());
  EXPECT_NEAR(trace.NodeShare(hw::kGpu0), gpu_fraction, 0.03);
}

TEST_F(InstrumentedProbeTest, SkewConcentratesOnHotNode) {
  // With Zipf-skewed keys, accesses concentrate on the low key range —
  // which the hybrid allocator places on the GPU extent first. The GPU
  // share must therefore exceed the byte fraction under skew.
  const std::size_t n = 1 << 16;
  const std::uint64_t gpu_capacity = topo_.memory(hw::kGpu0).capacity.u64();
  auto table = hash::HybridHashTable<std::int64_t, std::int64_t>::Create(
      &manager_, hw::kGpu0, n,
      gpu_capacity - static_cast<std::uint64_t>(0.5 * n * 16));
  ASSERT_TRUE(table.ok());
  const auto outer = data::GenerateOuterZipf<std::int64_t, std::int64_t>(
      200'000, n, 1.5, 7);
  const join::ProbeTrace trace =
      join::InstrumentedProbe(table.value(), outer);
  EXPECT_GT(trace.NodeShare(hw::kGpu0),
            table.value().gpu_fraction() + 0.2);
}

TEST_F(InstrumentedProbeTest, CacheHitsMatchZipfModel) {
  // The measured LRU hit rate of probe slots under Zipf keys validates
  // the ZipfHitRate term the cost model uses for Fig. 19.
  const std::size_t n = 1 << 17;
  auto table = hash::HybridHashTable<std::int64_t, std::int64_t>::Create(
      &manager_, hw::kGpu0, n);
  ASSERT_TRUE(table.ok());
  const std::size_t cache_entries = 2048;
  const auto outer = data::GenerateOuterZipf<std::int64_t, std::int64_t>(
      300'000, n, 1.25, 9);
  const join::ProbeTrace trace =
      join::InstrumentedProbe(table.value(), outer, cache_entries);
  const double analytic = sim::ZipfHitRate(n, cache_entries, 1.25);
  EXPECT_NEAR(trace.CacheHitRate(), analytic, 0.08);
}

}  // namespace
}  // namespace pump
