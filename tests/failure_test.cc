// Failure-path and edge-case coverage: every library error must surface
// as a Status (never a crash), and degenerate inputs must stay finite.

#include <cmath>
#include <tuple>

#include "data/workloads.h"
#include "gtest/gtest.h"
#include "hash/hybrid_table.h"
#include "hw/system_profile.h"
#include "join/cost_model.h"
#include "join/nopa.h"
#include "memory/allocator.h"
#include "memory/unified.h"
#include "ops/q6_model.h"
#include "transfer/executor.h"
#include "transfer/transfer_model.h"

namespace pump {
namespace {

using memory::MemoryKind;
using transfer::TransferMethod;

// ---------------------------------------------------------------------
// Full transfer validation matrix: every (method, memory kind) pair on
// both systems either validates or returns a typed error — never crashes
// and never mislabels.
class TransferMatrixTest
    : public ::testing::TestWithParam<
          std::tuple<int, TransferMethod, MemoryKind>> {};

TEST_P(TransferMatrixTest, ValidateIsTotalAndTyped) {
  const auto [system, method, kind] = GetParam();
  const hw::SystemProfile profile =
      system == 0 ? hw::Ac922Profile() : hw::XeonProfile();
  const transfer::TransferModel model(&profile);
  const Status status =
      model.Validate(method, hw::kGpu0, hw::kCpu0, kind);

  if (method == TransferMethod::kCoherence) {
    if (system == 0) {
      // NVLink: Coherence accepts every memory kind (Sec. 4.2).
      EXPECT_TRUE(status.ok());
    } else {
      EXPECT_EQ(status.code(), StatusCode::kUnsupported);
    }
    return;
  }
  const MemoryKind required = transfer::TraitsOf(method).required_memory;
  if (kind == required) {
    EXPECT_TRUE(status.ok()) << transfer::TransferMethodToString(method);
  } else {
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument)
        << transfer::TransferMethodToString(method);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCombinations, TransferMatrixTest,
    ::testing::Combine(
        ::testing::Values(0, 1),
        ::testing::ValuesIn(transfer::kAllTransferMethods),
        ::testing::Values(MemoryKind::kPageable, MemoryKind::kPinned,
                          MemoryKind::kUnified, MemoryKind::kDevice)));

// ---------------------------------------------------------------------
// Degenerate ExecuteTransfer inputs: every method must reject zero chunk
// sizes, zero page sizes and undersized destinations with a typed
// kInvalidArgument — never divide by zero, loop forever, or scribble out
// of bounds.
class TransferDegenerateTest
    : public ::testing::TestWithParam<TransferMethod> {
 protected:
  static constexpr std::uint64_t kBytes = 16 * 1024;
  static constexpr std::uint64_t kChunk = 4 * 1024;
  static constexpr std::uint64_t kPage = 4 * 1024;

  memory::Buffer MakeSrc() const {
    const MemoryKind kind = transfer::TraitsOf(GetParam()).required_memory;
    return memory::Buffer(kBytes, kind,
                          {memory::Extent{hw::kCpu0, kBytes}});
  }
  memory::Buffer MakeDst(std::uint64_t bytes = kBytes) const {
    return memory::Buffer(bytes, MemoryKind::kDevice,
                          {memory::Extent{hw::kGpu0, bytes}});
  }
  bool IsPush() const {
    return transfer::TraitsOf(GetParam()).semantics ==
           transfer::Semantics::kPush;
  }
  bool UsesUm() const {
    return GetParam() == TransferMethod::kUmPrefetch ||
           GetParam() == TransferMethod::kUmMigration;
  }
};

TEST_P(TransferDegenerateTest, ControlSetupSucceeds) {
  // The baseline configuration the degenerate cases perturb is valid, so
  // the errors below are attributable to the degenerate input alone.
  memory::Buffer src = MakeSrc();
  memory::Buffer dst = MakeDst();
  memory::UnifiedRegion region(kBytes, kPage, hw::kCpu0);
  auto stats = transfer::ExecuteTransfer(GetParam(), src, &dst, hw::kGpu0,
                                         kChunk, kPage, &region);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats.value().chunks, kBytes / kChunk);
}

TEST_P(TransferDegenerateTest, ZeroChunkBytesIsInvalidArgument) {
  memory::Buffer src = MakeSrc();
  memory::Buffer dst = MakeDst();
  memory::UnifiedRegion region(kBytes, kPage, hw::kCpu0);
  auto stats = transfer::ExecuteTransfer(GetParam(), src, &dst, hw::kGpu0,
                                         /*chunk_bytes=*/0, kPage, &region);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kInvalidArgument)
      << transfer::TransferMethodToString(GetParam());
}

TEST_P(TransferDegenerateTest, ZeroOsPageBytesIsInvalidArgument) {
  memory::Buffer src = MakeSrc();
  memory::Buffer dst = MakeDst();
  memory::UnifiedRegion region(kBytes, kPage, hw::kCpu0);
  auto stats = transfer::ExecuteTransfer(GetParam(), src, &dst, hw::kGpu0,
                                         kChunk, /*os_page_bytes=*/0,
                                         &region);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kInvalidArgument)
      << transfer::TransferMethodToString(GetParam());
}

TEST_P(TransferDegenerateTest, UnmaterializedSourceIsInvalidArgument) {
  memory::Buffer src(kBytes, transfer::TraitsOf(GetParam()).required_memory,
                     {memory::Extent{hw::kCpu0, kBytes}},
                     /*materialize=*/false);
  memory::Buffer dst = MakeDst();
  memory::UnifiedRegion region(kBytes, kPage, hw::kCpu0);
  auto stats = transfer::ExecuteTransfer(GetParam(), src, &dst, hw::kGpu0,
                                         kChunk, kPage, &region);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kInvalidArgument);
}

TEST_P(TransferDegenerateTest, PushRejectsMissingOrShortDestination) {
  if (!IsPush()) GTEST_SKIP() << "pull methods take no destination";
  memory::Buffer src = MakeSrc();
  memory::UnifiedRegion region(kBytes, kPage, hw::kCpu0);

  auto no_dst = transfer::ExecuteTransfer(GetParam(), src, nullptr,
                                          hw::kGpu0, kChunk, kPage, &region);
  ASSERT_FALSE(no_dst.ok());
  EXPECT_EQ(no_dst.status().code(), StatusCode::kInvalidArgument);

  memory::Buffer short_dst = MakeDst(kBytes / 2);
  auto short_stats = transfer::ExecuteTransfer(
      GetParam(), src, &short_dst, hw::kGpu0, kChunk, kPage, &region);
  ASSERT_FALSE(short_stats.ok());
  EXPECT_EQ(short_stats.status().code(), StatusCode::kInvalidArgument);

  memory::Buffer ghost_dst(kBytes, MemoryKind::kDevice,
                           {memory::Extent{hw::kGpu0, kBytes}},
                           /*materialize=*/false);
  auto ghost_stats = transfer::ExecuteTransfer(
      GetParam(), src, &ghost_dst, hw::kGpu0, kChunk, kPage, &region);
  ASSERT_FALSE(ghost_stats.ok());
  EXPECT_EQ(ghost_stats.status().code(), StatusCode::kInvalidArgument);
}

TEST_P(TransferDegenerateTest, UnifiedMethodsRequireMatchingRegion) {
  if (!UsesUm()) GTEST_SKIP() << "not a Unified Memory method";
  memory::Buffer src = MakeSrc();
  memory::Buffer dst = MakeDst();

  auto no_region = transfer::ExecuteTransfer(GetParam(), src, &dst,
                                             hw::kGpu0, kChunk, kPage);
  ASSERT_FALSE(no_region.ok());
  EXPECT_EQ(no_region.status().code(), StatusCode::kInvalidArgument);

  memory::UnifiedRegion small(kBytes / 2, kPage, hw::kCpu0);
  auto mismatched = transfer::ExecuteTransfer(GetParam(), src, &dst,
                                              hw::kGpu0, kChunk, kPage,
                                              &small);
  ASSERT_FALSE(mismatched.ok());
  EXPECT_EQ(mismatched.status().code(), StatusCode::kInvalidArgument);
}

INSTANTIATE_TEST_SUITE_P(AllMethods, TransferDegenerateTest,
                         ::testing::ValuesIn(transfer::kAllTransferMethods));

// ---------------------------------------------------------------------
// Degenerate workloads keep the models finite.

TEST(ModelEdgeCaseTest, TinyWorkloadStaysFinite) {
  const hw::SystemProfile ibm = hw::Ac922Profile();
  const join::NopaJoinModel model(&ibm);
  data::WorkloadSpec w;
  w.r_tuples = 1;
  w.s_tuples = 1;
  join::NopaConfig config;
  config.device = hw::kGpu0;
  config.r_location = hw::kCpu0;
  config.s_location = hw::kCpu0;
  config.hash_table = join::HashTablePlacement::Single(hw::kGpu0);
  Result<join::JoinTiming> timing = model.Estimate(config, w);
  ASSERT_TRUE(timing.ok());
  EXPECT_GT(timing.value().total_s().seconds(), 0.0);
  EXPECT_TRUE(std::isfinite(timing.value().total_s().seconds()));
}

TEST(ModelEdgeCaseTest, ExtremeSkewAndSelectivityStayFinite) {
  const hw::SystemProfile ibm = hw::Ac922Profile();
  const join::NopaJoinModel model(&ibm);
  join::NopaConfig config;
  config.device = hw::kGpu0;
  config.r_location = hw::kCpu0;
  config.s_location = hw::kCpu0;
  config.hash_table = join::HashTablePlacement::Single(hw::kCpu0);
  for (double z : {0.0, 3.0, 10.0}) {
    for (double sel : {0.0, 1.0}) {
      data::WorkloadSpec w = data::WorkloadA();
      w.zipf_exponent = z;
      w.selectivity = sel;
      Result<join::JoinTiming> timing = model.Estimate(config, w);
      ASSERT_TRUE(timing.ok()) << "z=" << z << " sel=" << sel;
      EXPECT_TRUE(std::isfinite(timing.value().total_s().seconds()));
      EXPECT_GT(timing.value().total_s().seconds(), 0.0);
    }
  }
}

TEST(ModelEdgeCaseTest, Q6ZeroRows) {
  const hw::SystemProfile ibm = hw::Ac922Profile();
  const ops::Q6Model model(&ibm);
  Result<ops::Q6Timing> timing = model.Estimate(
      hw::kGpu0, hw::kCpu0, TransferMethod::kCoherence,
      ops::Q6Variant::kBranching, 0.0);
  ASSERT_TRUE(timing.ok());
  // Only the dispatch latency remains.
  EXPECT_GT(timing.value().elapsed.seconds(), 0.0);
  EXPECT_LT(timing.value().elapsed.seconds(), 1e-3);
}

TEST(ModelEdgeCaseTest, InvalidDeviceInConfigIsAnError) {
  const hw::SystemProfile ibm = hw::Ac922Profile();
  const join::NopaJoinModel model(&ibm);
  join::NopaConfig config;
  config.device = hw::kGpu0;
  config.r_location = 99;  // No such node.
  config.s_location = hw::kCpu0;
  config.hash_table = join::HashTablePlacement::Single(hw::kGpu0);
  Result<join::JoinTiming> timing = model.Estimate(config, data::WorkloadA());
  EXPECT_FALSE(timing.ok());
}

// ---------------------------------------------------------------------
// Allocator failure paths during join setup.

TEST(FailureInjectionTest, HybridCreateFailsCleanlyWhenFull) {
  hw::Topology topo = hw::IbmAc922();
  memory::MemoryManager manager(&topo, /*materialize=*/false);
  // Exhaust every node.
  for (hw::MemoryNodeId node : {hw::kCpu0, hw::kCpu1}) {
    ASSERT_TRUE(manager
                    .Allocate(topo.memory(node).capacity.u64(),
                              MemoryKind::kPageable, node)
                    .ok());
  }
  ASSERT_TRUE(manager
                  .Allocate(topo.memory(hw::kGpu0).capacity.u64(),
                            MemoryKind::kDevice, hw::kGpu0)
                  .ok());
  auto table = hash::HybridHashTable<std::int64_t, std::int64_t>::Create(
      &manager, hw::kGpu0, 1 << 20);
  ASSERT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), StatusCode::kOutOfMemory);
}

TEST(FailureInjectionTest, BuildFailurePropagatesFirstError) {
  // Out-of-domain keys mid-build: the morsel-parallel build must stop and
  // report the error, not deadlock or crash.
  data::Relation64 inner;
  for (std::int64_t i = 0; i < 10'000; ++i) inner.Append(i, i);
  inner.keys[7'777] = 1 << 20;  // Outside the perfect-hash domain.
  hash::PerfectHashTable<std::int64_t, std::int64_t> table(inner.size());
  const Status status = join::BuildPhase(&table, inner, 4);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(FailureInjectionTest, ReleaseIsIdempotentEnough) {
  hw::Topology topo = hw::IbmAc922();
  memory::MemoryManager manager(&topo, /*materialize=*/false);
  Result<memory::Buffer> buffer =
      manager.Allocate(1 << 20, MemoryKind::kPageable, hw::kCpu0);
  ASSERT_TRUE(buffer.ok());
  manager.Release(buffer.value());
  EXPECT_EQ(manager.used_bytes(hw::kCpu0), 0u);
  // A second release must not underflow the accounting.
  manager.Release(buffer.value());
  EXPECT_EQ(manager.used_bytes(hw::kCpu0), 0u);
}

}  // namespace
}  // namespace pump
