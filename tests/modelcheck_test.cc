// Tests of the model linter: both testbed profiles must come back clean,
// and the deliberately broken fixture must fail with the expected,
// named violations.

#include <algorithm>
#include <string>
#include <vector>

#include "check/model_check.h"
#include "gtest/gtest.h"
#include "hw/system_profile.h"

namespace pump::check {
namespace {

std::vector<std::string> ViolatedChecks(const ProfileReport& report) {
  std::vector<std::string> checks;
  for (const Violation& violation : report.violations) {
    checks.push_back(violation.check);
  }
  return checks;
}

bool Contains(const std::vector<std::string>& haystack,
              const std::string& needle) {
  return std::find(haystack.begin(), haystack.end(), needle) !=
         haystack.end();
}

TEST(ModelCheckTest, Ac922ProfileIsClean) {
  const ProfileReport report = CheckProfile(hw::Ac922Profile());
  EXPECT_TRUE(report.ok()) << ReportsToJson({report});
  EXPECT_GE(report.checks_run.size(), 10u);
}

TEST(ModelCheckTest, XeonProfileIsClean) {
  const ProfileReport report = CheckProfile(hw::XeonProfile());
  EXPECT_TRUE(report.ok()) << ReportsToJson({report});
  EXPECT_GE(report.checks_run.size(), 10u);
}

TEST(ModelCheckTest, BrokenFixtureFailsWithExpectedViolations) {
  const ProfileReport report = CheckProfile(BrokenFixtureProfile());
  ASSERT_FALSE(report.ok());
  const std::vector<std::string> violated = ViolatedChecks(report);
  // GPU1 is disconnected.
  EXPECT_TRUE(Contains(violated, "topology.connectivity")) << ReportsToJson({report});
  // The CPU-GPU link claims 100 GiB/s measured over a 75 GB/s wire.
  EXPECT_TRUE(Contains(violated, "link.bandwidth-ordering"));
  // ... which is also off the paper's 63 GiB/s NVLink figure.
  EXPECT_TRUE(Contains(violated, "link.calibration"));
  // CPU0's memory latency (500 ns) is far off Fig. 3b's 68 ns.
  EXPECT_TRUE(Contains(violated, "memory.calibration"));
  // At 500 ns, the POWER9 outstanding-bytes budget cannot sustain the
  // advertised 117 GiB/s; and GPU0's 16 outstanding requests cannot
  // sustain the HBM2 random-access rate.
  EXPECT_TRUE(Contains(violated, "littles-law.spec"));
}

TEST(ModelCheckTest, BrokenFixtureConnectivityNamesTheOrphanDevice) {
  ProfileReport report;
  report.profile = "broken-fixture";
  CheckConnectivity(BrokenFixtureProfile(), &report);
  ASSERT_FALSE(report.violations.empty());
  // Every connectivity violation involves the unlinked GPU1 (id 3).
  for (const Violation& violation : report.violations) {
    EXPECT_EQ(violation.check, "topology.connectivity");
    EXPECT_NE(violation.subject.find("3"), std::string::npos)
        << violation.subject;
  }
}

TEST(ModelCheckTest, CleanChecksReportWhatRan) {
  ProfileReport report;
  report.profile = "ac922";
  const hw::SystemProfile profile = hw::Ac922Profile();
  CheckRouteSymmetry(profile, &report);
  CheckLinkSanity(profile, &report);
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(Contains(report.checks_run, "topology.route-symmetry"));
  EXPECT_TRUE(Contains(report.checks_run, "link.bandwidth-ordering"));
}

// ---------------------------------------------------------------------
// Mesh lint: every N-GPU topology profile must pass the structural +
// peering checks; the broken mesh fixture must fail with named
// violations.

TEST(ModelCheckTest, MeshProfilesAreClean) {
  for (const hw::SystemProfile& profile :
       {hw::NvlinkRingProfile(4), hw::NvSwitchCrossbarProfile(8),
        hw::NvSliPairProfile(), hw::GpuDirectPairProfile(),
        hw::HostBounceMeshProfile(4)}) {
    const ProfileReport report = CheckMeshProfile(profile);
    EXPECT_TRUE(report.ok()) << ReportsToJson({report});
    EXPECT_TRUE(Contains(report.checks_run, "mesh.gpu-present"))
        << profile.name;
    EXPECT_TRUE(Contains(report.checks_run, "mesh.peer-path"))
        << profile.name;
  }
}

TEST(ModelCheckTest, BrokenMeshFixtureFailsWithExpectedViolations) {
  const ProfileReport report = CheckMeshProfile(BrokenMeshFixtureProfile());
  ASSERT_FALSE(report.ok());
  const std::vector<std::string> violated = ViolatedChecks(report);
  // One GPU is left without any link: unreachable and unpeered.
  EXPECT_TRUE(Contains(violated, "topology.connectivity"))
      << ReportsToJson({report});
  EXPECT_TRUE(Contains(violated, "mesh.peer-path"));
  // Another GPU's host link claims more measured than electrical.
  EXPECT_TRUE(Contains(violated, "link.bandwidth-ordering"));
}

TEST(ModelCheckTest, MeshPeeringAcceptsHostBouncedPairs) {
  // The AC922-style mesh has no GPU-GPU links, but every pair reaches
  // its peer through the host within the mesh diameter — the lint must
  // accept routed (non-direct) exchanges.
  ProfileReport report;
  report.profile = "host-bounce-4";
  CheckMeshPeering(hw::HostBounceMeshProfile(4), &report);
  EXPECT_TRUE(report.ok()) << ReportsToJson({report});
}

TEST(ModelCheckTest, JsonReportIsMachineReadable) {
  const ProfileReport clean = CheckProfile(hw::Ac922Profile());
  const ProfileReport broken = CheckProfile(BrokenFixtureProfile());
  const std::string json = ReportsToJson({clean, broken});
  EXPECT_NE(json.find("\"ok\": false"), std::string::npos);
  EXPECT_NE(json.find("\"profile\": \"broken-fixture\""),
            std::string::npos);
  EXPECT_NE(json.find("\"check\": \"topology.connectivity\""),
            std::string::npos);
  // Top-level ok reflects the AND over profiles.
  EXPECT_EQ(json.rfind("{\"ok\": false", 0), 0u);
}

}  // namespace
}  // namespace pump::check
