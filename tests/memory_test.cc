#include <cstring>

#include "common/units.h"
#include "gtest/gtest.h"
#include "hw/topology.h"
#include "memory/allocator.h"
#include "memory/buffer.h"
#include "memory/unified.h"

namespace pump::memory {
namespace {

using hw::kCpu0;
using hw::kCpu1;
using hw::kGpu0;

class MemoryManagerTest : public ::testing::Test {
 protected:
  hw::Topology topo_ = hw::IbmAc922();
  MemoryManager manager_{&topo_, /*materialize=*/false};
};

TEST(BufferTest, MaterializedBufferIsZeroed) {
  Buffer buffer(64, MemoryKind::kPageable, {Extent{0, 64}});
  ASSERT_TRUE(buffer.materialized());
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(static_cast<int>(buffer.data()[i]), 0);
  }
}

TEST(BufferTest, ModelOnlyBufferHasNoStorage) {
  Buffer buffer(1ull << 40, MemoryKind::kDevice, {Extent{2, 1ull << 40}},
                /*materialize=*/false);
  EXPECT_FALSE(buffer.materialized());
  EXPECT_EQ(buffer.data(), nullptr);
  EXPECT_EQ(buffer.size(), 1ull << 40);
}

TEST(BufferTest, FractionOnNode) {
  Buffer buffer(100, MemoryKind::kDevice,
                {Extent{2, 60}, Extent{0, 40}}, /*materialize=*/false);
  EXPECT_DOUBLE_EQ(buffer.FractionOnNode(2), 0.6);
  EXPECT_DOUBLE_EQ(buffer.FractionOnNode(0), 0.4);
  EXPECT_DOUBLE_EQ(buffer.FractionOnNode(1), 0.0);
  EXPECT_EQ(buffer.home_node(), 2);
}

TEST(BufferTest, NodeOfByte) {
  Buffer buffer(100, MemoryKind::kDevice,
                {Extent{2, 60}, Extent{0, 40}}, /*materialize=*/false);
  EXPECT_EQ(buffer.NodeOfByte(0), 2);
  EXPECT_EQ(buffer.NodeOfByte(59), 2);
  EXPECT_EQ(buffer.NodeOfByte(60), 0);
  EXPECT_EQ(buffer.NodeOfByte(99), 0);
  EXPECT_EQ(buffer.NodeOfByte(100), hw::kInvalidMemoryNode);
}

TEST(BufferTest, KindNames) {
  EXPECT_STREQ(MemoryKindToString(MemoryKind::kPageable), "Pageable");
  EXPECT_STREQ(MemoryKindToString(MemoryKind::kPinned), "Pinned");
  EXPECT_STREQ(MemoryKindToString(MemoryKind::kUnified), "Unified");
  EXPECT_STREQ(MemoryKindToString(MemoryKind::kDevice), "Device");
}

TEST_F(MemoryManagerTest, AllocateTracksUsage) {
  Result<Buffer> buffer =
      manager_.Allocate(1 * kGiB, MemoryKind::kPageable, kCpu0);
  ASSERT_TRUE(buffer.ok());
  EXPECT_EQ(manager_.used_bytes(kCpu0), 1 * kGiB);
  manager_.Release(buffer.value());
  EXPECT_EQ(manager_.used_bytes(kCpu0), 0u);
}

TEST_F(MemoryManagerTest, EnforcesGpuCapacity) {
  // V100 has 16 GiB (Sec. 7.1): a 17 GiB device allocation must fail.
  Result<Buffer> buffer =
      manager_.Allocate(17 * kGiB, MemoryKind::kDevice, kGpu0);
  ASSERT_FALSE(buffer.ok());
  EXPECT_EQ(buffer.status().code(), StatusCode::kOutOfMemory);
}

TEST_F(MemoryManagerTest, PlacementRules) {
  // Device memory only on GPUs; host kinds only on CPUs.
  EXPECT_FALSE(manager_.Allocate(64, MemoryKind::kDevice, kCpu0).ok());
  EXPECT_FALSE(manager_.Allocate(64, MemoryKind::kPageable, kGpu0).ok());
  EXPECT_FALSE(manager_.Allocate(64, MemoryKind::kPinned, kGpu0).ok());
  EXPECT_TRUE(manager_.Allocate(64, MemoryKind::kPinned, kCpu0).ok());
  EXPECT_TRUE(manager_.Allocate(64, MemoryKind::kDevice, kGpu0).ok());
}

TEST_F(MemoryManagerTest, HybridFitsEntirelyOnGpu) {
  Result<Buffer> table = manager_.AllocateHybrid(8 * kGiB, kGpu0);
  ASSERT_TRUE(table.ok());
  ASSERT_EQ(table.value().extents().size(), 1u);
  EXPECT_EQ(table.value().extents()[0].node, kGpu0);
  EXPECT_DOUBLE_EQ(table.value().FractionOnNode(kGpu0), 1.0);
}

TEST_F(MemoryManagerTest, HybridSpillsToNearestCpu) {
  // Fig. 8: a 24 GiB table on a 16 GiB GPU spills 8 GiB to CPU0.
  Result<Buffer> table = manager_.AllocateHybrid(24 * kGiB, kGpu0);
  ASSERT_TRUE(table.ok());
  ASSERT_EQ(table.value().extents().size(), 2u);
  EXPECT_EQ(table.value().extents()[0].node, kGpu0);
  EXPECT_EQ(table.value().extents()[0].bytes, 16 * kGiB);
  EXPECT_EQ(table.value().extents()[1].node, kCpu0);
  EXPECT_EQ(table.value().extents()[1].bytes, 8 * kGiB);
  EXPECT_NEAR(table.value().FractionOnNode(kGpu0), 16.0 / 24.0, 1e-9);
}

TEST_F(MemoryManagerTest, HybridHonorsGpuReserve) {
  Result<Buffer> table =
      manager_.AllocateHybrid(16 * kGiB, kGpu0, /*gpu_reserve_bytes=*/4 * kGiB);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table.value().extents()[0].bytes, 12 * kGiB);
  EXPECT_EQ(table.value().extents()[1].bytes, 4 * kGiB);
}

TEST_F(MemoryManagerTest, HybridSpillsRecursivelyAcrossSockets) {
  // Exhaust GPU and CPU0 so the spill reaches CPU1 (next-nearest NUMA
  // node, Sec. 5.3).
  Result<Buffer> filler =
      manager_.Allocate(127 * kGiB, MemoryKind::kPageable, kCpu0);
  ASSERT_TRUE(filler.ok());
  Result<Buffer> table = manager_.AllocateHybrid(20 * kGiB, kGpu0);
  ASSERT_TRUE(table.ok());
  ASSERT_EQ(table.value().extents().size(), 3u);
  EXPECT_EQ(table.value().extents()[0].node, kGpu0);
  EXPECT_EQ(table.value().extents()[1].node, kCpu0);
  EXPECT_EQ(table.value().extents()[1].bytes, 1 * kGiB);
  EXPECT_EQ(table.value().extents()[2].node, kCpu1);
  EXPECT_EQ(table.value().extents()[2].bytes, 3 * kGiB);
}

TEST_F(MemoryManagerTest, HybridFailsBeyondSystemCapacity) {
  Result<Buffer> table = manager_.AllocateHybrid(1024 * kGiB, kGpu0);
  ASSERT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), StatusCode::kOutOfMemory);
  // Roll-back: nothing may remain reserved.
  EXPECT_EQ(manager_.used_bytes(kGpu0), 0u);
  EXPECT_EQ(manager_.used_bytes(kCpu0), 0u);
  EXPECT_EQ(manager_.used_bytes(kCpu1), 0u);
}

TEST_F(MemoryManagerTest, HybridRequiresGpuDevice) {
  EXPECT_FALSE(manager_.AllocateHybrid(1 * kGiB, kCpu0).ok());
}

TEST_F(MemoryManagerTest, PinnedAllocationCostsMore) {
  // Sec. 3: allocating pageable memory is faster than pinned memory.
  MemoryManager manager(&topo_, /*materialize=*/false);
  (void)manager.Allocate(1 * kGiB, MemoryKind::kPageable, kCpu0);
  const double pageable_time = manager.modelled_alloc_time();
  (void)manager.Allocate(1 * kGiB, MemoryKind::kPinned, kCpu0);
  const double pinned_time = manager.modelled_alloc_time() - pageable_time;
  EXPECT_GT(pinned_time, 5.0 * pageable_time);
}

TEST(UnifiedRegionTest, InitialResidency) {
  UnifiedRegion region(256 * 1024, kIbmPageBytes, kCpu0);
  EXPECT_EQ(region.page_count(), 4u);
  EXPECT_EQ(region.PagesOn(kCpu0), 4u);
  EXPECT_EQ(region.ResidencyOf(0).value(), kCpu0);
}

TEST(UnifiedRegionTest, TouchMigratesPage) {
  UnifiedRegion region(256 * 1024, kIbmPageBytes, kCpu0);
  EXPECT_TRUE(region.Touch(70 * 1024, kGpu0).value());  // Fault.
  EXPECT_EQ(region.ResidencyOf(70 * 1024).value(), kGpu0);
  EXPECT_FALSE(region.Touch(70 * 1024, kGpu0).value());  // Now resident.
  EXPECT_EQ(region.fault_count(), 1u);
  EXPECT_EQ(region.PagesOn(kGpu0), 1u);
  EXPECT_EQ(region.PagesOn(kCpu0), 3u);
}

TEST(UnifiedRegionTest, PrefetchMovesRange) {
  UnifiedRegion region(1024 * 1024, kIntelPageBytes, kCpu0);
  Result<std::uint64_t> moved = region.Prefetch(0, 512 * 1024, kGpu0);
  ASSERT_TRUE(moved.ok());
  EXPECT_EQ(moved.value(), 128u);
  EXPECT_EQ(region.PagesOn(kGpu0), 128u);
  // Prefetching an already-resident range moves nothing.
  EXPECT_EQ(region.Prefetch(0, 512 * 1024, kGpu0).value(), 0u);
  // Prefetch does not count as a fault.
  EXPECT_EQ(region.fault_count(), 0u);
}

TEST(UnifiedRegionTest, OutOfRangeRejected) {
  UnifiedRegion region(64 * 1024, kIbmPageBytes, kCpu0);
  EXPECT_FALSE(region.Touch(64 * 1024, kGpu0).ok());
  EXPECT_FALSE(region.ResidencyOf(1 << 20).ok());
  EXPECT_FALSE(region.Prefetch(0, 128 * 1024, kGpu0).ok());
}

TEST(UnifiedRegionTest, PartialTailPage) {
  UnifiedRegion region(65 * 1024, kIbmPageBytes, kCpu0);
  EXPECT_EQ(region.page_count(), 2u);
  EXPECT_TRUE(region.Touch(64 * 1024 + 512, kGpu0).value());
}

}  // namespace
}  // namespace pump::memory
