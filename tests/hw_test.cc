#include "common/units.h"
#include "gtest/gtest.h"
#include "hw/device.h"
#include "hw/link.h"
#include "hw/memory_spec.h"
#include "hw/system_profile.h"
#include "hw/topology.h"

namespace pump::hw {
namespace {

TEST(DeviceSpecTest, KindsAndNames) {
  EXPECT_EQ(TeslaV100().kind, DeviceKind::kGpu);
  EXPECT_EQ(Power9().kind, DeviceKind::kCpu);
  EXPECT_EQ(XeonGold6126().kind, DeviceKind::kCpu);
  EXPECT_STREQ(DeviceKindToString(DeviceKind::kGpu), "GPU");
  EXPECT_STREQ(DeviceKindToString(DeviceKind::kCpu), "CPU");
}

TEST(DeviceSpecTest, GpuHidesLatencyBetterThanCpu) {
  // Core modelling assumption (Sec. 3): GPUs keep far more memory traffic
  // in flight than CPUs.
  EXPECT_GT(TeslaV100().max_outstanding.bytes(),
            10 * Power9().max_outstanding.bytes());
  EXPECT_GT(TeslaV100().max_outstanding_requests,
            10 * Power9().max_outstanding_requests);
  EXPECT_EQ(TeslaV100().random_dependency_factor, 1.0);
  EXPECT_LT(Power9().random_dependency_factor, 1.0);
}

TEST(LinkSpecTest, PaperBandwidthOrdering) {
  // Fig. 3a: NVLink 2.0 has ~5x the sequential bandwidth of PCI-e 3.0 and
  // ~2x UPI / X-Bus.
  const LinkSpec nvlink = Nvlink2x3();
  const LinkSpec pcie = Pcie3x16();
  EXPECT_NEAR(nvlink.seq_bw / pcie.seq_bw, 5.25, 0.1);
  EXPECT_NEAR(nvlink.seq_bw / Upi().seq_bw, 2.0, 0.1);
  EXPECT_NEAR(nvlink.seq_bw / Xbus().seq_bw, 2.0, 0.1);
}

TEST(LinkSpecTest, PaperRandomAccessOrdering) {
  // Fig. 3a: random accesses are 14x faster than PCI-e 3.0 and 35-40%
  // faster than UPI.
  EXPECT_NEAR(Nvlink2x3().random_access_rate / Pcie3x16().random_access_rate,
              14.0, 0.5);
  EXPECT_NEAR(Nvlink2x3().random_access_rate / Upi().random_access_rate, 1.4,
              0.1);
}

TEST(LinkSpecTest, CoherenceFlags) {
  EXPECT_TRUE(Nvlink2x3().cache_coherent);
  EXPECT_TRUE(Xbus().cache_coherent);
  EXPECT_TRUE(Upi().cache_coherent);
  EXPECT_FALSE(Pcie3x16().cache_coherent);
}

TEST(LinkSpecTest, PacketOverheads) {
  // Sec. 2.2: NVLink packs 256 B behind a 16 B header; PCI-e needs a
  // 20-26 B header, so NVLink is more efficient for small payloads.
  EXPECT_GT(Nvlink2x3().BulkEfficiency(), 0.9);
  EXPECT_GT(Pcie3x16().BulkEfficiency(), 0.9);
  EXPECT_LT(Nvlink2x3().header_bytes.bytes(),
            Pcie3x16().header_bytes.bytes());
}

TEST(MemorySpecTest, PaperAnchors) {
  // Fig. 3b/3c anchors.
  EXPECT_DOUBLE_EQ(ToGiBPerSecond(Power9Memory().seq_bw), 117.0);
  EXPECT_DOUBLE_EQ(ToGiBPerSecond(XeonMemory().seq_bw), 81.0);
  EXPECT_DOUBLE_EQ(ToGiBPerSecond(V100Hbm2().seq_bw), 729.0);
  EXPECT_DOUBLE_EQ(V100Hbm2().capacity.bytes(), 16.0 * kGiB);
  EXPECT_NEAR(ToNanoseconds(Power9Memory().latency), 68.0, 0.1);
  EXPECT_NEAR(ToNanoseconds(XeonMemory().latency), 70.0, 0.1);
  EXPECT_NEAR(ToNanoseconds(V100Hbm2().latency), 282.0, 0.1);
}

TEST(CacheSpecTest, GpuL2IsMemorySide) {
  // Sec. 7.2.3: the V100 L2 cannot cache remote data.
  EXPECT_TRUE(V100L2().memory_side);
  EXPECT_FALSE(Power9L3().memory_side);
  EXPECT_FALSE(XeonL3().memory_side);
}

class TopologyTest : public ::testing::Test {
 protected:
  Topology ibm_ = IbmAc922();
  Topology intel_ = IntelXeonV100();
};

TEST_F(TopologyTest, Ac922Structure) {
  EXPECT_EQ(ibm_.device_count(), 4u);
  EXPECT_EQ(ibm_.device(kCpu0).kind, DeviceKind::kCpu);
  EXPECT_EQ(ibm_.device(kGpu0).kind, DeviceKind::kGpu);
  EXPECT_EQ(ibm_.edges().size(), 3u);
  EXPECT_EQ(ibm_.DevicesOfKind(DeviceKind::kGpu).size(), 2u);
  EXPECT_EQ(ibm_.DevicesOfKind(DeviceKind::kCpu).size(), 2u);
}

TEST_F(TopologyTest, IntelStructure) {
  EXPECT_EQ(intel_.device_count(), 3u);
  EXPECT_EQ(intel_.DevicesOfKind(DeviceKind::kGpu).size(), 1u);
}

TEST_F(TopologyTest, LocalRouteIsEmpty) {
  Result<Route> route = ibm_.FindRoute(kGpu0, kGpu0);
  ASSERT_TRUE(route.ok());
  EXPECT_EQ(route.value().hops(), 0u);
}

TEST_F(TopologyTest, HopCountsMatchFig4a) {
  // Fig. 13/14 sweep 0-3 hops: GPU0 -> local(0), CPU0(1), CPU1(2), GPU1(3).
  EXPECT_EQ(ibm_.FindRoute(kGpu0, kGpu0).value().hops(), 0u);
  EXPECT_EQ(ibm_.FindRoute(kGpu0, kCpu0).value().hops(), 1u);
  EXPECT_EQ(ibm_.FindRoute(kGpu0, kCpu1).value().hops(), 2u);
  EXPECT_EQ(ibm_.FindRoute(kGpu0, kGpu1).value().hops(), 3u);
}

TEST_F(TopologyTest, RouteTraversesExpectedLinks) {
  Result<Route> route = ibm_.FindRoute(kGpu0, kGpu1);
  ASSERT_TRUE(route.ok());
  const auto& edges = ibm_.edges();
  ASSERT_EQ(route.value().hops(), 3u);
  EXPECT_EQ(edges[route.value().edge_indices[0]].link.family,
            LinkFamily::kNvlink2);
  EXPECT_EQ(edges[route.value().edge_indices[1]].link.family,
            LinkFamily::kXbus);
  EXPECT_EQ(edges[route.value().edge_indices[2]].link.family,
            LinkFamily::kNvlink2);
}

TEST_F(TopologyTest, InvalidRouteArguments) {
  EXPECT_FALSE(ibm_.FindRoute(-1, 0).ok());
  EXPECT_FALSE(ibm_.FindRoute(0, 99).ok());
}

TEST_F(TopologyTest, DisconnectedDevicesReportNotFound) {
  Topology topo;
  topo.AddDevice(Power9(), Power9Memory(), Power9L3());
  topo.AddDevice(TeslaV100(), V100Hbm2(), V100L2());
  Result<Route> route = topo.FindRoute(0, 1);
  ASSERT_FALSE(route.ok());
  EXPECT_EQ(route.status().code(), StatusCode::kNotFound);
}

TEST_F(TopologyTest, AddLinkValidation) {
  Topology topo;
  topo.AddDevice(Power9(), Power9Memory(), Power9L3());
  EXPECT_FALSE(topo.AddLink(0, 0, Xbus()).ok());
  EXPECT_FALSE(topo.AddLink(0, 5, Xbus()).ok());
}

TEST_F(TopologyTest, CoherencePathsOnIbm) {
  // Every path on the AC922 is cache-coherent (NVLink 2.0 + X-Bus).
  for (DeviceId from = 0; from < 4; ++from) {
    for (MemoryNodeId to = 0; to < 4; ++to) {
      EXPECT_TRUE(ibm_.IsCacheCoherentPath(from, to).value())
          << from << " -> " << to;
    }
  }
}

TEST_F(TopologyTest, PciePathIsNotCoherent) {
  EXPECT_FALSE(intel_.IsCacheCoherentPath(kGpu0, kCpu0).value());
  EXPECT_FALSE(intel_.IsCacheCoherentPath(kGpu0, kCpu1).value());
  // CPU-to-CPU over UPI is coherent.
  EXPECT_TRUE(intel_.IsCacheCoherentPath(kCpu0, kCpu1).value());
}

TEST_F(TopologyTest, MemoryNodesByDistanceSpillOrder) {
  // Fig. 8: the hybrid allocator spills GPU -> nearest CPU -> next CPU.
  const auto cpu_nodes = ibm_.MemoryNodesByDistance(kGpu0, /*cpu_only=*/true);
  ASSERT_EQ(cpu_nodes.size(), 2u);
  EXPECT_EQ(cpu_nodes[0], kCpu0);
  EXPECT_EQ(cpu_nodes[1], kCpu1);

  const auto all_nodes = ibm_.MemoryNodesByDistance(kGpu0, /*cpu_only=*/false);
  ASSERT_EQ(all_nodes.size(), 4u);
  EXPECT_EQ(all_nodes[0], kGpu0);
}

TEST_F(TopologyTest, ToStringMentionsDevices) {
  const std::string dump = ibm_.ToString();
  EXPECT_NE(dump.find("POWER9"), std::string::npos);
  EXPECT_NE(dump.find("V100"), std::string::npos);
  EXPECT_NE(dump.find("NVLink"), std::string::npos);
}

// ---------------------------------------------------------------------
// N-GPU mesh builders and peer routing (the topologies the sharded-join
// exchange planner routes partitions over).

TEST(MeshTopologyTest, NvlinkRingShape) {
  const Topology ring = NvlinkRing(4);
  // One x86 host + 4 GPUs; 4 PCIe host links + 4 ring links.
  EXPECT_EQ(ring.device_count(), 5u);
  EXPECT_EQ(ring.DevicesOfKind(DeviceKind::kGpu).size(), 4u);
  EXPECT_EQ(ring.DevicesOfKind(DeviceKind::kCpu).size(), 1u);
  EXPECT_EQ(ring.edges().size(), 8u);
}

TEST(MeshTopologyTest, TwoGpuRingCollapsesToSingleBridge) {
  const Topology ring = NvlinkRing(2);
  EXPECT_EQ(ring.device_count(), 3u);
  // 2 PCIe host links + one bridge (no duplicate ring edge).
  EXPECT_EQ(ring.edges().size(), 3u);
}

TEST(MeshTopologyTest, NvSwitchCrossbarConnectsEveryPairDirectly) {
  const Topology crossbar = NvSwitchCrossbar(8);
  EXPECT_EQ(crossbar.DevicesOfKind(DeviceKind::kGpu).size(), 8u);
  // 8 host links + C(8,2) = 28 peer links.
  EXPECT_EQ(crossbar.edges().size(), 36u);
  const std::vector<DeviceId> gpus =
      crossbar.DevicesOfKind(DeviceKind::kGpu);
  for (const DeviceId a : gpus) {
    for (const DeviceId b : gpus) {
      if (a == b) continue;
      const Result<Route> route = crossbar.FindPeerRoute(a, b);
      ASSERT_TRUE(route.ok()) << a << " -> " << b;
      EXPECT_EQ(route.value().hops(), 1u);
    }
  }
}

TEST(MeshTopologyTest, RingPeerRouteStaysOnTheRing) {
  const Topology ring = NvlinkRing(4);
  const std::vector<DeviceId> gpus = ring.DevicesOfKind(DeviceKind::kGpu);
  // Neighbours are 1 peer hop apart; the opposite corner is 2. The
  // 2-hop host path (PCIe up + PCIe down) is never chosen.
  EXPECT_EQ(ring.FindPeerRoute(gpus[0], gpus[1]).value().hops(), 1u);
  EXPECT_EQ(ring.FindPeerRoute(gpus[0], gpus[2]).value().hops(), 2u);
  const Result<Route> corner = ring.FindPeerRoute(gpus[0], gpus[2]);
  for (const std::size_t edge_index : corner.value().edge_indices) {
    EXPECT_EQ(ring.edges()[edge_index].link.family, LinkFamily::kNvlink2);
  }
}

TEST(MeshTopologyTest, HostBounceMeshHasNoPeerRoutes) {
  const Topology mesh = HostBounceMesh(4);
  const std::vector<DeviceId> gpus = mesh.DevicesOfKind(DeviceKind::kGpu);
  ASSERT_EQ(gpus.size(), 4u);
  // No GPU-GPU edges: peer routing fails, the full search bounces
  // through the host (2 hops).
  EXPECT_FALSE(mesh.FindPeerRoute(gpus[0], gpus[1]).ok());
  const Result<Route> bounced = mesh.FindRoute(gpus[0], gpus[1]);
  ASSERT_TRUE(bounced.ok());
  EXPECT_EQ(bounced.value().hops(), 2u);
}

TEST(MeshTopologyTest, PeerRouteRejectsNonGpuEndpoints) {
  const Topology ring = NvlinkRing(4);
  // Device 0 is the host CPU.
  EXPECT_FALSE(ring.FindPeerRoute(0, 1).ok());
}

TEST(MeshTopologyTest, PairBuilders) {
  const Topology sli = NvSliPair();
  EXPECT_EQ(sli.DevicesOfKind(DeviceKind::kGpu).size(), 2u);
  const Topology p2p = GpuDirectPair();
  EXPECT_EQ(p2p.DevicesOfKind(DeviceKind::kGpu).size(), 2u);
  const std::vector<DeviceId> gpus = sli.DevicesOfKind(DeviceKind::kGpu);
  EXPECT_TRUE(sli.FindPeerRoute(gpus[0], gpus[1]).ok());
}

TEST(MeshTopologyTest, MeshProfilesAreNamedAndConsistent) {
  for (const SystemProfile& profile :
       {NvlinkRingProfile(4), NvSwitchCrossbarProfile(8), NvSliPairProfile(),
        GpuDirectPairProfile(), HostBounceMeshProfile(4)}) {
    EXPECT_FALSE(profile.name.empty());
    EXPECT_FALSE(profile.topology.DevicesOfKind(DeviceKind::kGpu).empty())
        << profile.name;
  }
}

TEST(SystemProfileTest, PageSizesMatchOs) {
  // Sec. 4.2 [69]: 4 KiB pages on Intel, 64 KiB on IBM.
  EXPECT_EQ(Ac922Profile().os_page.u64(), 64u * kKiB);
  EXPECT_EQ(XeonProfile().os_page.u64(), 4u * kKiB);
}

TEST(SystemProfileTest, StagingThreadsMatchPaper) {
  // Sec. 7.2.1: Staged Copy fully utilizes 4 CPU cores.
  EXPECT_EQ(Ac922Profile().staging_threads, 4);
  EXPECT_EQ(XeonProfile().staging_threads, 4);
}

}  // namespace
}  // namespace pump::hw
