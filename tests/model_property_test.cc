// Property-style parameterized sweeps over the cost models: invariants
// that must hold for *every* configuration, not just the paper's
// figures — monotonicity, bounds, and cross-system consistency.

#include <tuple>

#include "common/units.h"
#include "data/workloads.h"
#include "gtest/gtest.h"
#include "hw/system_profile.h"
#include "join/cost_model.h"
#include "sim/access_path.h"
#include "sim/overlap.h"
#include "transfer/transfer_model.h"

namespace pump {
namespace {

using join::HashTablePlacement;
using join::NopaConfig;
using join::NopaJoinModel;
using transfer::TransferMethod;

// ---------------------------------------------------------------------
// Access-path invariants over every (device, memory) pair of both
// systems.

class PathInvariantTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(PathInvariantTest, BoundsAndConsistency) {
  const auto [system, device, memory] = GetParam();
  const hw::Topology topo =
      system == 0 ? hw::IbmAc922() : hw::IntelXeonV100();
  if (device >= static_cast<int>(topo.device_count()) ||
      memory >= static_cast<int>(topo.device_count())) {
    GTEST_SKIP();
  }
  const sim::AccessPath path = sim::MustResolve(topo, device, memory);

  // Bandwidth and rates are positive and bounded by the local memory's.
  EXPECT_GT(path.seq_bw.bytes_per_second(), 0.0);
  EXPECT_GT(path.random_access_rate.per_second(), 0.0);
  EXPECT_LE(path.seq_bw.bytes_per_second(),
            topo.memory(memory).seq_bw.bytes_per_second() * 1.0001);
  EXPECT_LE(path.random_access_rate.per_second(),
            topo.memory(memory).random_access_rate.per_second() * 1.0001);

  // Latency at least the memory's own latency; grows with hops.
  EXPECT_GE(path.latency.seconds(), topo.memory(memory).latency.seconds());
  if (path.hops == 0) {
    EXPECT_DOUBLE_EQ(path.latency.seconds(),
                     topo.memory(memory).latency.seconds());
    EXPECT_TRUE(path.cache_coherent);
  }

  // Dependent rate never exceeds the independent rate.
  EXPECT_LE(path.dependent_access_rate.per_second(),
            path.random_access_rate.per_second() * 1.0001);
}

INSTANTIATE_TEST_SUITE_P(AllPairs, PathInvariantTest,
                         ::testing::Combine(::testing::Values(0, 1),
                                            ::testing::Range(0, 4),
                                            ::testing::Range(0, 4)));

// ---------------------------------------------------------------------
// Join-model monotonicity sweeps.

class JoinMonotonicityTest : public ::testing::Test {
 protected:
  double Throughput(const NopaConfig& config,
                    const data::WorkloadSpec& w) const {
    Result<join::JoinTiming> timing = model_.Estimate(config, w);
    EXPECT_TRUE(timing.ok()) << timing.status();
    return timing.value()
        .Throughput(static_cast<double>(w.total_tuples()))
        .per_second();
  }

  NopaConfig GpuConfig(hw::MemoryNodeId ht) const {
    NopaConfig config;
    config.device = hw::kGpu0;
    config.r_location = hw::kCpu0;
    config.s_location = hw::kCpu0;
    config.hash_table = HashTablePlacement::Single(ht);
    return config;
  }

  hw::SystemProfile ibm_ = hw::Ac922Profile();
  NopaJoinModel model_{&ibm_};
};

TEST_F(JoinMonotonicityTest, ThroughputRisesWithProbeShare) {
  // For fixed |R|, growing |S| amortizes the build: throughput must be
  // non-decreasing across two decades of |S|.
  double previous = 0.0;
  for (std::uint64_t s = 64ull << 20; s <= 8192ull << 20; s *= 2) {
    const data::WorkloadSpec w = data::WorkloadC16(64ull << 20, s);
    const double tput = Throughput(GpuConfig(hw::kGpu0), w);
    EXPECT_GE(tput, previous * 0.999) << "|S| = " << (s >> 20) << "M";
    previous = tput;
  }
}

TEST_F(JoinMonotonicityTest, TimeScalesLinearlyAtFixedRatio) {
  // Doubling both relations at a fixed ratio doubles the runtime (no
  // superlinear artifacts) as long as the placement stays the same.
  const data::WorkloadSpec small =
      data::WorkloadC16(64ull << 20, 512ull << 20);
  const data::WorkloadSpec large =
      data::WorkloadC16(128ull << 20, 1024ull << 20);
  Result<join::JoinTiming> t_small =
      model_.Estimate(GpuConfig(hw::kGpu0), small);
  Result<join::JoinTiming> t_large =
      model_.Estimate(GpuConfig(hw::kGpu0), large);
  ASSERT_TRUE(t_small.ok());
  ASSERT_TRUE(t_large.ok());
  EXPECT_NEAR(t_large.value().total_s() / t_small.value().total_s(), 2.0,
              0.1);
}

TEST_F(JoinMonotonicityTest, SkewNeverHurts) {
  for (hw::MemoryNodeId ht : {hw::kGpu0, hw::kCpu0}) {
    double previous = 0.0;
    for (double z : {0.0, 0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 1.75}) {
      data::WorkloadSpec w = data::WorkloadA();
      w.zipf_exponent = z;
      const double tput = Throughput(GpuConfig(ht), w);
      EXPECT_GE(tput, previous * 0.999) << "ht=" << ht << " z=" << z;
      previous = tput;
    }
  }
}

TEST_F(JoinMonotonicityTest, SelectivityNeverHelps) {
  for (hw::MemoryNodeId ht : {hw::kGpu0, hw::kCpu0}) {
    double previous = 1e30;
    for (double sel : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
      data::WorkloadSpec w = data::WorkloadA();
      w.selectivity = sel;
      const double tput = Throughput(GpuConfig(ht), w);
      EXPECT_LE(tput, previous * 1.001) << "ht=" << ht << " sel=" << sel;
      previous = tput;
    }
  }
}

TEST_F(JoinMonotonicityTest, MoreGpuFractionNeverHurts) {
  for (std::uint64_t m : {512ull, 1024ull, 2048ull}) {
    const data::WorkloadSpec w = data::WorkloadC16(m << 20, m << 20);
    double previous = 0.0;
    for (double f : {0.0, 0.1, 0.3, 0.5, 0.7, 0.9, 1.0}) {
      NopaConfig config = GpuConfig(hw::kGpu0);
      config.hash_table =
          HashTablePlacement::Hybrid(hw::kGpu0, hw::kCpu0, f);
      const double tput = Throughput(config, w);
      EXPECT_GE(tput, previous * 0.999) << "m=" << m << " f=" << f;
      previous = tput;
    }
  }
}

TEST_F(JoinMonotonicityTest, BuildAndProbePositive) {
  for (const data::WorkloadSpec& w :
       {data::WorkloadA(), data::WorkloadB(), data::WorkloadC()}) {
    Result<join::JoinTiming> timing =
        model_.Estimate(GpuConfig(hw::kGpu0), w);
    ASSERT_TRUE(timing.ok());
    EXPECT_GT(timing.value().build_s.seconds(), 0.0);
    EXPECT_GT(timing.value().probe_s.seconds(), 0.0);
  }
}

// ---------------------------------------------------------------------
// Transfer-model sweeps across methods and chunk sizes.

class TransferSweepTest
    : public ::testing::TestWithParam<TransferMethod> {};

TEST_P(TransferSweepTest, MakespanMonotonicInBytes) {
  const hw::SystemProfile profile = hw::Ac922Profile();
  const transfer::TransferModel model(&profile);
  Seconds previous;
  for (double gib = 1.0; gib <= 64.0; gib *= 2.0) {
    Result<Seconds> time = model.TransferTime(GetParam(), hw::kGpu0,
                                              hw::kCpu0, Bytes::GiB(gib));
    ASSERT_TRUE(time.ok());
    EXPECT_GT(time.value().seconds(), previous.seconds());
    previous = time.value();
  }
}

TEST_P(TransferSweepTest, IngestWithinLinkEnvelope) {
  // No method may exceed the electrical link bandwidth on either system.
  for (bool ibm : {true, false}) {
    const hw::SystemProfile profile =
        ibm ? hw::Ac922Profile() : hw::XeonProfile();
    const transfer::TransferModel model(&profile);
    if (GetParam() == TransferMethod::kCoherence && !ibm) continue;
    Result<BytesPerSecond> bw =
        model.IngestBandwidth(GetParam(), hw::kGpu0, hw::kCpu0);
    ASSERT_TRUE(bw.ok());
    const BytesPerSecond electrical =
        ibm ? GBPerSecond(75.0) : GBPerSecond(16.0);
    EXPECT_LE(bw.value().bytes_per_second(), electrical.bytes_per_second());
    EXPECT_GT(bw.value().bytes_per_second(), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllMethods, TransferSweepTest,
                         ::testing::ValuesIn(transfer::kAllTransferMethods));

// ---------------------------------------------------------------------
// Overlap-norm algebraic properties.

TEST(OverlapPropertyTest, SymmetricAndBounded) {
  for (double a : {0.1, 1.0, 5.0}) {
    for (double b : {0.1, 1.0, 5.0}) {
      for (double p : {1.0, 2.0, 4.0, 16.0}) {
        const double ab = sim::OverlapTime({a, b}, p);
        const double ba = sim::OverlapTime({b, a}, p);
        EXPECT_DOUBLE_EQ(ab, ba);
        EXPECT_GE(ab, std::max(a, b) * 0.9999);
        EXPECT_LE(ab, (a + b) * 1.0001);
      }
    }
  }
}

TEST(OverlapPropertyTest, MonotoneInExponent) {
  // Higher p = more overlap = less time.
  double previous = 1e30;
  for (double p : {1.0, 1.5, 2.0, 4.0, 8.0, 32.0}) {
    const double t = sim::OverlapTime({1.0, 2.0, 3.0}, p);
    EXPECT_LT(t, previous);
    previous = t;
  }
}

TEST(OverlapPropertyTest, ScaleInvariant) {
  const double t = sim::OverlapTime({1.0, 2.0}, 2.0);
  const double scaled = sim::OverlapTime({10.0, 20.0}, 2.0);
  EXPECT_NEAR(scaled, 10.0 * t, 1e-9);
}

}  // namespace
}  // namespace pump
