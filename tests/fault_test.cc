// The fault-injection subsystem and the three degradation ladders it
// drives: chunk retry in the transfer layer, hybrid-table spill under
// injected device OOM, scheduler group failover, and the engine's CPU
// fallback. The paper's robustness claims (Secs. 5-6) exercised off the
// happy path.

#include <atomic>
#include <cstring>
#include <vector>

#include "engine/executor.h"
#include "engine/ssb.h"
#include "exec/het_scheduler.h"
#include "fault/fault_injector.h"
#include "fault/retry.h"
#include "gtest/gtest.h"
#include "hash/hybrid_table.h"
#include "hw/topology.h"
#include "memory/allocator.h"
#include "transfer/executor.h"

namespace pump {
namespace {

using memory::Buffer;
using memory::Extent;
using memory::MemoryKind;
using transfer::TransferMethod;

// ---------------------------------------------------------------------
// FaultInjector: deterministic, seeded, scoped.

std::vector<bool> Schedule(fault::FaultInjector* injector,
                           const std::string& site, int checks,
                           const std::string& scope = "") {
  std::vector<bool> fired;
  for (int i = 0; i < checks; ++i) {
    fired.push_back(!injector->Check(site, scope).ok());
  }
  return fired;
}

TEST(FaultInjectorTest, SameSeedSameSchedule) {
  for (std::uint64_t seed : {1ull, 7ull, 42ull}) {
    fault::FaultInjector a(seed);
    fault::FaultInjector b(seed);
    fault::FaultSpec spec;
    spec.probability = 0.3;
    a.Arm(fault::kTransferChunk, spec);
    b.Arm(fault::kTransferChunk, spec);
    EXPECT_EQ(Schedule(&a, fault::kTransferChunk, 200),
              Schedule(&b, fault::kTransferChunk, 200))
        << "seed " << seed;
  }
}

TEST(FaultInjectorTest, DifferentSeedsDiffer) {
  fault::FaultInjector a(1);
  fault::FaultInjector b(2);
  fault::FaultSpec spec;
  spec.probability = 0.5;
  a.Arm(fault::kTransferChunk, spec);
  b.Arm(fault::kTransferChunk, spec);
  EXPECT_NE(Schedule(&a, fault::kTransferChunk, 200),
            Schedule(&b, fault::kTransferChunk, 200));
}

TEST(FaultInjectorTest, UnarmedSitePasses) {
  fault::FaultInjector injector(3);
  EXPECT_TRUE(injector.Check(fault::kTransferChunk).ok());
  EXPECT_EQ(injector.hits(fault::kTransferChunk), 0u);
}

TEST(FaultInjectorTest, AfterHitsTargetsExactHit) {
  fault::FaultInjector injector(4);
  fault::FaultSpec spec;
  spec.probability = 1.0;
  spec.after_hits = 5;
  spec.max_fires = 1;
  injector.Arm(fault::kAllocDevice, spec);
  const std::vector<bool> fired =
      Schedule(&injector, fault::kAllocDevice, 10);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(fired[i], i == 5) << "hit " << i;
  }
  EXPECT_EQ(injector.fires(fault::kAllocDevice), 1u);
  EXPECT_EQ(injector.hits(fault::kAllocDevice), 10u);
}

TEST(FaultInjectorTest, MaxFiresBoundsTheBudget) {
  fault::FaultInjector injector(5);
  fault::FaultSpec spec;
  spec.probability = 1.0;
  spec.max_fires = 3;
  injector.Arm(fault::kTransferChunk, spec);
  (void)Schedule(&injector, fault::kTransferChunk, 100);
  EXPECT_EQ(injector.fires(fault::kTransferChunk), 3u);
}

TEST(FaultInjectorTest, ScopesAreIndependentStreams) {
  // The same site checked under two scopes yields per-scope schedules that
  // do not depend on interleaving: checking them alternately or
  // back-to-back gives identical per-scope sequences.
  fault::FaultSpec spec;
  spec.probability = 0.4;

  fault::FaultInjector sequential(11);
  sequential.Arm(fault::kSchedWorkerStall, spec);
  const auto seq_a =
      Schedule(&sequential, fault::kSchedWorkerStall, 50, "CPU");
  const auto seq_b =
      Schedule(&sequential, fault::kSchedWorkerStall, 50, "GPU");

  fault::FaultInjector interleaved(11);
  interleaved.Arm(fault::kSchedWorkerStall, spec);
  std::vector<bool> int_a, int_b;
  for (int i = 0; i < 50; ++i) {
    int_a.push_back(
        !interleaved.Check(fault::kSchedWorkerStall, "CPU").ok());
    int_b.push_back(
        !interleaved.Check(fault::kSchedWorkerStall, "GPU").ok());
  }
  EXPECT_EQ(seq_a, int_a);
  EXPECT_EQ(seq_b, int_b);
  EXPECT_NE(seq_a, seq_b);  // Distinct streams.
}

TEST(FaultInjectorTest, InjectedCodeAndDisarm) {
  fault::FaultInjector injector(6);
  fault::FaultSpec spec;
  spec.probability = 1.0;
  spec.code = StatusCode::kResourceExhausted;
  injector.Arm(fault::kAllocDevice, spec);
  const Status status = injector.Check(fault::kAllocDevice);
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  injector.Disarm(fault::kAllocDevice);
  EXPECT_TRUE(injector.Check(fault::kAllocDevice).ok());
}

// ---------------------------------------------------------------------
// Status taxonomy and RetryPolicy.

TEST(RetryClassTest, OnlyUnavailableIsRetryable) {
  EXPECT_TRUE(IsRetryable(StatusCode::kUnavailable));
  EXPECT_FALSE(IsRetryable(StatusCode::kResourceExhausted));
  EXPECT_FALSE(IsRetryable(StatusCode::kOutOfMemory));
  EXPECT_FALSE(IsRetryable(StatusCode::kInternal));
  EXPECT_FALSE(IsRetryable(StatusCode::kInvalidArgument));
  EXPECT_FALSE(IsRetryable(StatusCode::kOk));
}

TEST(RetryClassTest, NewCodesHaveNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnavailable), "Unavailable");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kResourceExhausted),
               "ResourceExhausted");
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
}

TEST(RetryPolicyTest, BackoffIsExponentialBoundedAndDeterministic) {
  fault::RetryPolicy policy;
  policy.initial_backoff_s = 1e-6;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_s = 4e-6;
  policy.jitter = 0.0;
  Rng rng(0);
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(1, &rng), 1e-6);
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(2, &rng), 2e-6);
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(3, &rng), 4e-6);
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(4, &rng), 4e-6);  // Capped.
}

TEST(RetryPolicyTest, JitterStaysWithinBandAndReplays) {
  fault::RetryPolicy policy;
  policy.initial_backoff_s = 1e-3;
  policy.max_backoff_s = 1e-3;
  policy.jitter = 0.25;
  Rng rng1(9);
  Rng rng2(9);
  for (int retry = 1; retry <= 20; ++retry) {
    const double a = policy.BackoffSeconds(retry, &rng1);
    EXPECT_GE(a, 0.75e-3);
    EXPECT_LE(a, 1.25e-3);
    EXPECT_DOUBLE_EQ(a, policy.BackoffSeconds(retry, &rng2));
  }
}

TEST(RetryPolicyTest, SaltedIsDeterministicAndDecorrelated) {
  fault::RetryPolicy policy;
  policy.jitter = 0.5;
  policy.seed = 42;
  const auto backoffs = [](const fault::RetryPolicy& p) {
    Rng rng(p.seed);
    std::vector<double> out;
    for (int retry = 1; retry <= 6; ++retry) {
      out.push_back(p.BackoffSeconds(retry, &rng));
    }
    return out;
  };
  // Same salt, same stream: a fixed engine seed replays exactly.
  EXPECT_EQ(backoffs(policy.Salted(7)), backoffs(policy.Salted(7)));
  // Nearby salts (consecutive query ids) draw independent streams — the
  // lockstep-retry herd is broken even for ids 1, 2, 3...
  EXPECT_NE(backoffs(policy.Salted(1)), backoffs(policy.Salted(2)));
  EXPECT_NE(backoffs(policy.Salted(2)), backoffs(policy.Salted(3)));
  EXPECT_NE(backoffs(policy), backoffs(policy.Salted(1)));
}

TEST(RetryPolicyTest, SaltedChangesOnlyTheSeed) {
  fault::RetryPolicy policy;
  policy.max_attempts = 7;
  policy.initial_backoff_s = 3e-6;
  policy.backoff_multiplier = 1.5;
  policy.max_backoff_s = 9e-6;
  policy.jitter = 0.1;
  policy.seed = 99;
  const fault::RetryPolicy salted = policy.Salted(5);
  EXPECT_EQ(salted.max_attempts, policy.max_attempts);
  EXPECT_DOUBLE_EQ(salted.initial_backoff_s, policy.initial_backoff_s);
  EXPECT_DOUBLE_EQ(salted.backoff_multiplier, policy.backoff_multiplier);
  EXPECT_DOUBLE_EQ(salted.max_backoff_s, policy.max_backoff_s);
  EXPECT_DOUBLE_EQ(salted.jitter, policy.jitter);
  EXPECT_NE(salted.seed, policy.seed);
}

TEST(RunWithRetryTest, SharedPolicyRetriesInLockstepUnlessSalted) {
  // RunWithRetry seeds its jitter stream fresh from policy.seed each
  // invocation: two queries sharing one policy charge *identical*
  // backoff (the herd). Salting by query id decorrelates them.
  fault::RetryPolicy policy;
  policy.max_attempts = 5;
  policy.jitter = 0.5;
  policy.seed = 42;
  const auto total_backoff = [](const fault::RetryPolicy& p) {
    fault::RetryStats stats;
    (void)fault::RunWithRetry(
        p, [] { return Status::Unavailable("always"); }, &stats);
    return stats.backoff_s;
  };
  EXPECT_DOUBLE_EQ(total_backoff(policy), total_backoff(policy));
  EXPECT_NE(total_backoff(policy.Salted(1)), total_backoff(policy.Salted(2)));
}

TEST(RunWithRetryTest, SucceedsAfterTransientFaults) {
  fault::RetryPolicy policy;
  policy.max_attempts = 5;
  int calls = 0;
  fault::RetryStats stats;
  const Status status = fault::RunWithRetry(
      policy,
      [&]() -> Status {
        ++calls;
        if (calls < 3) return Status::Unavailable("flaky");
        return Status::OK();
      },
      &stats);
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(stats.attempts, 3u);
  EXPECT_EQ(stats.retries, 2u);
  EXPECT_GT(stats.backoff_s, 0.0);
}

TEST(RunWithRetryTest, ExhaustsBudgetOnPersistentTransientFault) {
  fault::RetryPolicy policy;
  policy.max_attempts = 4;
  int calls = 0;
  const Status status = fault::RunWithRetry(policy, [&]() -> Status {
    ++calls;
    return Status::Unavailable("always");
  });
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(calls, 4);
}

TEST(RunWithRetryTest, NonRetryableErrorReturnsImmediately) {
  fault::RetryPolicy policy;
  policy.max_attempts = 10;
  int calls = 0;
  const Status status = fault::RunWithRetry(policy, [&]() -> Status {
    ++calls;
    return Status::ResourceExhausted("hard");
  });
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(calls, 1);
}

// ---------------------------------------------------------------------
// Transfer layer: chunk-granular retry.

class TransferFaultTest : public ::testing::Test {
 protected:
  static constexpr std::uint64_t kBytes = 64 * 1024;
  static constexpr std::uint64_t kChunk = 4 * 1024;

  Buffer MakeSource() {
    Buffer src(kBytes, MemoryKind::kPinned, {Extent{hw::kCpu0, kBytes}});
    for (std::uint64_t i = 0; i < kBytes; ++i) {
      src.data()[i] = static_cast<std::byte>(i * 13 + 5);
    }
    return src;
  }
};

TEST_F(TransferFaultTest, TransientChunkFaultsAreRetriedToCompletion) {
  Buffer src = MakeSource();
  Buffer dst(kBytes, MemoryKind::kDevice, {Extent{hw::kGpu0, kBytes}});
  fault::FaultInjector injector(21);
  fault::FaultSpec spec;
  spec.probability = 0.3;  // Transient kUnavailable faults on many chunks.
  injector.Arm(fault::kTransferChunk, spec);
  transfer::TransferFaultOptions faults;
  faults.injector = &injector;
  faults.retry.max_attempts = 20;  // Ample budget: must always succeed.

  auto stats = transfer::ExecuteTransfer(TransferMethod::kPinnedCopy, src,
                                         &dst, hw::kGpu0, kChunk, 4096,
                                         nullptr, {}, faults);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_GT(stats.value().faults_injected, 0u);
  EXPECT_EQ(stats.value().retries, stats.value().faults_injected);
  EXPECT_GT(stats.value().modelled_backoff_s, 0.0);
  EXPECT_EQ(stats.value().bytes_copied, kBytes);
  // The payload is bit-identical despite the mid-flight faults.
  EXPECT_EQ(std::memcmp(src.data(), dst.data(), kBytes), 0);
}

TEST_F(TransferFaultTest, FaultScheduleReplaysAcrossRuns) {
  auto run = [&](std::uint64_t seed) {
    Buffer src = MakeSource();
    Buffer dst(kBytes, MemoryKind::kDevice, {Extent{hw::kGpu0, kBytes}});
    fault::FaultInjector injector(seed);
    fault::FaultSpec spec;
    spec.probability = 0.25;
    injector.Arm(fault::kTransferChunk, spec);
    transfer::TransferFaultOptions faults;
    faults.injector = &injector;
    faults.retry.max_attempts = 50;
    auto stats = transfer::ExecuteTransfer(TransferMethod::kPinnedCopy, src,
                                           &dst, hw::kGpu0, kChunk, 4096,
                                           nullptr, {}, faults);
    EXPECT_TRUE(stats.ok());
    return stats.value().faults_injected;
  };
  const std::uint64_t first = run(33);
  EXPECT_GT(first, 0u);
  EXPECT_EQ(run(33), first);  // Identical schedule for the same seed.
}

TEST_F(TransferFaultTest, ExhaustedRetryBudgetNamesTheFailingOffset) {
  Buffer src = MakeSource();
  Buffer dst(kBytes, MemoryKind::kDevice, {Extent{hw::kGpu0, kBytes}});
  fault::FaultInjector injector(22);
  fault::FaultSpec spec;
  spec.probability = 1.0;
  spec.after_hits = 12;  // Chunks 0-11 pass... then every attempt fails.
  injector.Arm(fault::kTransferChunk, spec);
  transfer::TransferFaultOptions faults;
  faults.injector = &injector;
  faults.retry.max_attempts = 3;

  auto stats = transfer::ExecuteTransfer(TransferMethod::kPinnedCopy, src,
                                         &dst, hw::kGpu0, kChunk, 4096,
                                         nullptr, {}, faults);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kUnavailable);
  // Chunk 12 starts at offset 12 * 4096.
  EXPECT_NE(stats.status().message().find(std::to_string(12 * 4096)),
            std::string::npos)
      << stats.status();
}

TEST_F(TransferFaultTest, HardFaultIsNotRetried) {
  Buffer src = MakeSource();
  Buffer dst(kBytes, MemoryKind::kDevice, {Extent{hw::kGpu0, kBytes}});
  fault::FaultInjector injector(23);
  fault::FaultSpec spec;
  spec.probability = 1.0;
  spec.code = StatusCode::kInternal;  // Non-retryable class.
  injector.Arm(fault::kTransferChunk, spec);
  transfer::TransferFaultOptions faults;
  faults.injector = &injector;
  faults.retry.max_attempts = 10;

  auto stats = transfer::ExecuteTransfer(TransferMethod::kPinnedCopy, src,
                                         &dst, hw::kGpu0, kChunk, 4096,
                                         nullptr, {}, faults);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kInternal);
  EXPECT_EQ(injector.fires(fault::kTransferChunk), 1u);
}

TEST_F(TransferFaultTest, LinkDegradationIsObservedNotFatal) {
  Buffer src = MakeSource();
  Buffer dst(kBytes, MemoryKind::kDevice, {Extent{hw::kGpu0, kBytes}});
  fault::FaultInjector injector(24);
  fault::FaultSpec spec;
  spec.probability = 0.5;
  injector.Arm(fault::kLinkDegrade, spec);
  transfer::TransferFaultOptions faults;
  faults.injector = &injector;

  auto stats = transfer::ExecuteTransfer(TransferMethod::kPinnedCopy, src,
                                         &dst, hw::kGpu0, kChunk, 4096,
                                         nullptr, {}, faults);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_GT(stats.value().degraded_chunks, 0u);
  EXPECT_LT(stats.value().degraded_chunks, stats.value().chunks);
  EXPECT_EQ(stats.value().retries, 0u);
  EXPECT_EQ(std::memcmp(src.data(), dst.data(), kBytes), 0);
}

TEST_F(TransferFaultTest, UmMigrateFaultsAreRetriedToo) {
  Buffer src(kBytes, MemoryKind::kUnified, {Extent{hw::kCpu0, kBytes}});
  memory::UnifiedRegion region(kBytes, 4096, hw::kCpu0);
  fault::FaultInjector injector(25);
  fault::FaultSpec spec;
  spec.probability = 0.3;
  injector.Arm(fault::kUmMigrate, spec);
  transfer::TransferFaultOptions faults;
  faults.injector = &injector;
  faults.retry.max_attempts = 20;

  auto stats = transfer::ExecuteTransfer(TransferMethod::kUmMigration, src,
                                         nullptr, hw::kGpu0, kChunk, 4096,
                                         &region, {}, faults);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_GT(stats.value().faults_injected, 0u);
  // Every page still migrated exactly once.
  EXPECT_EQ(stats.value().pages_migrated, kBytes / 4096);
  EXPECT_EQ(region.PagesOn(hw::kGpu0), kBytes / 4096);
}

// ---------------------------------------------------------------------
// Hybrid hash table: spill under injected device-allocation failure.

TEST(HybridSpillTest, InjectedDeviceOomSpillsRemainderToCpu) {
  hw::Topology topo = hw::IbmAc922();
  memory::MemoryManager manager(&topo, /*materialize=*/false);
  fault::FaultInjector injector(31);
  fault::FaultSpec spec;
  spec.probability = 1.0;
  spec.after_hits = 8;  // Half the 16 allocation slices land on the GPU.
  spec.code = StatusCode::kResourceExhausted;
  injector.Arm(fault::kAllocDevice, spec);

  const std::size_t capacity = 1 << 20;  // Fits GPU memory comfortably.
  auto table = hash::HybridHashTable<std::int64_t, std::int64_t>::Create(
      &manager, hw::kGpu0, capacity, /*gpu_reserve_bytes=*/0, &injector);
  ASSERT_TRUE(table.ok()) << table.status();
  // The achieved GPU fraction reflects the slices placed before the fault.
  EXPECT_NEAR(table.value().gpu_fraction(), 0.5, 0.01);
  EXPECT_GT(manager.used_bytes(hw::kCpu0), 0u);
  // Accounting is consistent: GPU + CPU extents cover the table.
  std::uint64_t total = 0;
  for (const Extent& extent : table.value().buffer().extents()) {
    total += extent.bytes;
  }
  EXPECT_EQ(total, table.value().buffer().size());
}

TEST(HybridSpillTest, ImmediateDeviceOomYieldsCpuOnlyTable) {
  hw::Topology topo = hw::IbmAc922();
  memory::MemoryManager manager(&topo, /*materialize=*/false);
  fault::FaultInjector injector(32);
  fault::FaultSpec spec;
  spec.probability = 1.0;
  spec.code = StatusCode::kResourceExhausted;
  injector.Arm(fault::kAllocDevice, spec);

  auto table = hash::HybridHashTable<std::int64_t, std::int64_t>::Create(
      &manager, hw::kGpu0, 1 << 18, 0, &injector);
  ASSERT_TRUE(table.ok()) << table.status();
  EXPECT_DOUBLE_EQ(table.value().gpu_fraction(), 0.0);
  EXPECT_EQ(manager.used_bytes(hw::kGpu0), 0u);
}

TEST(HybridSpillTest, SpillScheduleReplaysWithSeed) {
  auto gpu_fraction = [&](std::uint64_t seed) {
    hw::Topology topo = hw::IbmAc922();
    memory::MemoryManager manager(&topo, /*materialize=*/false);
    fault::FaultInjector injector(seed);
    fault::FaultSpec spec;
    spec.probability = 0.2;
    spec.code = StatusCode::kResourceExhausted;
    injector.Arm(fault::kAllocDevice, spec);
    auto table = hash::HybridHashTable<std::int64_t, std::int64_t>::Create(
        &manager, hw::kGpu0, 1 << 20, 0, &injector);
    EXPECT_TRUE(table.ok());
    return table.value().gpu_fraction();
  };
  EXPECT_DOUBLE_EQ(gpu_fraction(77), gpu_fraction(77));
}

// ---------------------------------------------------------------------
// Heterogeneous scheduler: group failover.

TEST(SchedulerFailoverTest, DeadGroupsMorselsFailOverExactlyOnce) {
  constexpr std::size_t kTotal = 50'000;
  std::vector<std::atomic<int>> touched(kTotal);
  auto work = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      touched[i].fetch_add(1, std::memory_order_relaxed);
    }
  };
  fault::FaultInjector injector(41);
  fault::FaultSpec spec;
  spec.probability = 1.0;
  spec.after_hits = 3;  // The GPU group dies on its 4th dispatch.
  spec.max_fires = 1;
  injector.Arm(fault::kSchedWorkerStall, spec);

  std::vector<exec::ProcessorGroup> groups;
  groups.push_back({"CPU", 4, 1, work});
  groups.push_back({"GPU", 1, 8, work});
  const auto stats =
      exec::RunHeterogeneous(kTotal, 100, std::move(groups), &injector);

  // Both groups checked the same failpoint but only one stream fired:
  // whichever group drew the fault is dead, the other survived.
  ASSERT_EQ(stats.size(), 2u);
  int failed_groups = 0;
  std::size_t processed = 0, failover = 0;
  for (const auto& group : stats) {
    failed_groups += group.failed ? 1 : 0;
    processed += group.tuples;
    failover += group.failover_tuples;
  }
  EXPECT_EQ(failed_groups, 1);
  EXPECT_EQ(processed, kTotal);
  EXPECT_GT(failover, 0u);  // The orphaned batch was adopted.
  // Exactly-once coverage despite the mid-run death.
  for (std::size_t i = 0; i < kTotal; ++i) {
    ASSERT_EQ(touched[i].load(), 1) << "tuple " << i;
  }
}

TEST(SchedulerFailoverTest, AllGroupsDeadLeavesTuplesUnprocessed) {
  constexpr std::size_t kTotal = 10'000;
  std::atomic<std::size_t> seen{0};
  auto work = [&](std::size_t begin, std::size_t end) {
    seen.fetch_add(end - begin, std::memory_order_relaxed);
  };
  fault::FaultInjector injector(42);
  fault::FaultSpec spec;
  spec.probability = 1.0;  // Every dispatch of every group stalls.
  injector.Arm(fault::kSchedWorkerStall, spec);

  std::vector<exec::ProcessorGroup> groups;
  groups.push_back({"CPU", 2, 1, work});
  groups.push_back({"GPU", 1, 4, work});
  const auto stats =
      exec::RunHeterogeneous(kTotal, 100, std::move(groups), &injector);

  std::size_t processed = 0;
  for (const auto& group : stats) {
    EXPECT_TRUE(group.failed) << group.name;
    processed += group.tuples;
  }
  EXPECT_EQ(processed, seen.load());
  EXPECT_LT(processed, kTotal);  // Detectable by the caller.
}

TEST(SchedulerFailoverTest, NoInjectorMatchesLegacyBehaviour) {
  constexpr std::size_t kTotal = 20'000;
  std::vector<std::atomic<int>> touched(kTotal);
  auto work = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      touched[i].fetch_add(1, std::memory_order_relaxed);
    }
  };
  std::vector<exec::ProcessorGroup> groups;
  groups.push_back({"CPU", 3, 1, work});
  groups.push_back({"GPU", 1, 8, work});
  const auto stats = exec::RunHeterogeneous(kTotal, 64, std::move(groups));
  std::size_t processed = 0;
  for (const auto& group : stats) {
    EXPECT_FALSE(group.failed);
    EXPECT_EQ(group.failover_tuples, 0u);
    processed += group.tuples;
  }
  EXPECT_EQ(processed, kTotal);
  for (std::size_t i = 0; i < kTotal; ++i) ASSERT_EQ(touched[i].load(), 1);
}

// ---------------------------------------------------------------------
// Engine: the full degradation ladder, verified against the CPU plan.

class EngineDegradationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = engine::SsbDatabase::Generate(20'000, 13);
    query_ = engine::SsbQ1(db_);
    reference_ = engine::Executor::Run(query_, 2).value();
  }

  engine::SsbDatabase db_;
  engine::Query query_;
  engine::QueryResult reference_;
};

TEST_F(EngineDegradationTest, FaultFreeGpuPlanMatchesCpuPlan) {
  engine::ExecOptions options;
  options.workers = 2;
  options.morsel_tuples = 1'000;
  auto report = engine::Executor::RunResilient(query_, options);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report.value().used_gpu);
  EXPECT_FALSE(report.value().degraded);
  EXPECT_EQ(report.value().result, reference_);
  EXPECT_DOUBLE_EQ(report.value().hybrid_gpu_fraction, 1.0);
}

TEST_F(EngineDegradationTest, TransientTransferFaultsAreInvisible) {
  engine::ExecOptions options;
  options.workers = 2;
  options.morsel_tuples = 1'000;
  options.chunk_bytes = 8 * 1024;
  fault::FaultInjector injector(51);
  fault::FaultSpec spec;
  spec.probability = 0.2;
  injector.Arm(fault::kTransferChunk, spec);
  options.injector = &injector;
  options.retry.max_attempts = 30;

  auto report = engine::Executor::RunResilient(query_, options);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report.value().used_gpu);
  EXPECT_GT(report.value().transfer_retries, 0u);
  // Bit-identical to the fault-free run.
  EXPECT_EQ(report.value().result, reference_);
}

TEST_F(EngineDegradationTest, InjectedGpuOomCompletesViaSpill) {
  engine::ExecOptions options;
  options.workers = 2;
  options.morsel_tuples = 1'000;
  fault::FaultInjector injector(52);
  fault::FaultSpec spec;
  spec.probability = 1.0;
  spec.code = StatusCode::kResourceExhausted;
  injector.Arm(fault::kAllocDevice, spec);
  options.injector = &injector;

  auto report = engine::Executor::RunResilient(query_, options);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report.value().used_gpu);  // Spill, not fallback.
  EXPECT_TRUE(report.value().degraded);
  EXPECT_LT(report.value().hybrid_gpu_fraction, 1.0);
  EXPECT_NE(report.value().degradation_reason.find("spilled"),
            std::string::npos);
  EXPECT_EQ(report.value().result, reference_);
}

TEST_F(EngineDegradationTest, GroupStallFailsOverWithinTheGpuPlan) {
  engine::ExecOptions options;
  options.workers = 2;
  options.morsel_tuples = 500;  // Many dispatches: failover has work left.
  fault::FaultInjector injector(53);
  fault::FaultSpec spec;
  spec.probability = 1.0;
  spec.after_hits = 2;
  spec.max_fires = 1;
  injector.Arm(fault::kSchedWorkerStall, spec);
  options.injector = &injector;

  auto report = engine::Executor::RunResilient(query_, options);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report.value().used_gpu);
  EXPECT_TRUE(report.value().degraded);
  EXPECT_NE(report.value().degradation_reason.find("stalled"),
            std::string::npos);
  EXPECT_EQ(report.value().result, reference_);
}

TEST_F(EngineDegradationTest, UnrecoverableTransferFaultFallsBackToCpu) {
  engine::ExecOptions options;
  options.workers = 2;
  fault::FaultInjector injector(54);
  fault::FaultSpec spec;
  spec.probability = 1.0;  // Every chunk attempt fails: budget exhausts.
  injector.Arm(fault::kTransferChunk, spec);
  options.injector = &injector;
  options.retry.max_attempts = 3;

  auto report = engine::Executor::RunResilient(query_, options);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_FALSE(report.value().used_gpu);
  EXPECT_TRUE(report.value().degraded);
  EXPECT_NE(report.value().degradation_reason.find("fell back to CPU"),
            std::string::npos);
  // The fallback answer is the CPU answer, verbatim.
  EXPECT_EQ(report.value().result, reference_);
}

TEST_F(EngineDegradationTest, AllGroupsDeadFallsBackToCpu) {
  engine::ExecOptions options;
  options.workers = 1;
  options.morsel_tuples = 1'000;
  fault::FaultInjector injector(55);
  fault::FaultSpec spec;
  spec.probability = 1.0;  // Both scheduler groups stall immediately.
  injector.Arm(fault::kSchedWorkerStall, spec);
  options.injector = &injector;

  auto report = engine::Executor::RunResilient(query_, options);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_FALSE(report.value().used_gpu);
  EXPECT_TRUE(report.value().degraded);
  EXPECT_EQ(report.value().result, reference_);
}

TEST_F(EngineDegradationTest, ValidationErrorsAreNotMaskedByFallback) {
  engine::Query bad = query_;
  bad.measure_column = "does_not_exist";
  engine::ExecOptions options;
  auto report = engine::Executor::RunResilient(bad, options);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace pump
