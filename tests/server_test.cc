// The serving layer: bounded admission with load shedding, cooperative
// cancellation and deadlines, graceful degradation under modelled GPU
// pressure, crash containment across concurrent queries, and the
// process-wide single-flight build cache. Runs under TSan in check.sh —
// the concurrent-submitter tests double as race regressions.

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "common/cancel.h"
#include "engine/executor.h"
#include "engine/ssb.h"
#include "engine/table.h"
#include "gtest/gtest.h"
#include "hw/system_profile.h"
#include "hw/topology.h"
#include "obs/metrics.h"
#include "plan/build_cache.h"
#include "plan/compiler.h"
#include "server/query_engine.h"

namespace pump {
namespace {

// ---------------------------------------------------------------------
// Shared fixtures: a small SSB database, its solo reference results, and
// a poison query whose build deterministically fails (duplicate
// dimension keys trip the uniqueness check at execution time, past
// compilation).

const engine::SsbDatabase& Db() {
  static const engine::SsbDatabase db =
      engine::SsbDatabase::Generate(20'000, /*seed=*/42);
  return db;
}

engine::QueryResult Solo(const engine::Query& query) {
  Result<engine::QueryResult> solo = engine::Executor::Run(query, 2);
  EXPECT_TRUE(solo.ok()) << solo.status();
  return solo.value_or(engine::QueryResult{});
}

struct PoisonFixture {
  engine::Table dim;
  engine::Query query;
};

const PoisonFixture& Poison() {
  static const PoisonFixture* fixture = [] {
    auto* f = new PoisonFixture();
    EXPECT_TRUE(f->dim.AddColumn("pk", {0, 1, 2, 2}).ok());
    f->query.fact = &Db().lineorder;
    f->query.measure_column = "lo_revenue";
    f->query.joins.push_back(
        engine::JoinClause{"lo_custkey", &f->dim, "pk", {}, false});
    return f;
  }();
  return *fixture;
}

plan::BuildPipeline BuildFor(const engine::Query& query, std::size_t i) {
  Result<plan::PhysicalPlan> plan = plan::Compile(query);
  EXPECT_TRUE(plan.ok()) << plan.status();
  EXPECT_GT(plan.value().builds.size(), i);
  return plan.value().builds[i];
}

// ---------------------------------------------------------------------
// CancelToken: latched first cause, deadline expiry.

TEST(CancelTokenTest, StartsLive) {
  CancelToken token;
  EXPECT_FALSE(token.Cancelled());
  EXPECT_TRUE(token.ToStatus().ok());
}

TEST(CancelTokenTest, CancelLatchesUserCause) {
  CancelToken token;
  token.Cancel();
  EXPECT_TRUE(token.Cancelled());
  EXPECT_EQ(token.ToStatus().code(), StatusCode::kCancelled);
  // A later deadline cannot overwrite the first cause.
  token.SetDeadlineAfter(-1.0);
  EXPECT_EQ(token.ToStatus().code(), StatusCode::kCancelled);
}

TEST(CancelTokenTest, ExpiredDeadlineReportsDeadlineExceeded) {
  CancelToken token;
  token.SetDeadlineAfter(-1.0);  // already in the past
  EXPECT_TRUE(token.Cancelled());
  EXPECT_EQ(token.ToStatus().code(), StatusCode::kDeadlineExceeded);
  // First cause wins: a user cancel after expiry does not relabel it.
  token.Cancel();
  EXPECT_EQ(token.ToStatus().code(), StatusCode::kDeadlineExceeded);
}

TEST(CancelTokenTest, FutureDeadlineStaysLive) {
  CancelToken token;
  token.SetDeadlineAfter(3600.0);
  EXPECT_FALSE(token.Cancelled());
}

// ---------------------------------------------------------------------
// BuildCache: hit/miss, LRU eviction, single-flight, error containment.

TEST(BuildCacheTest, SecondRequestHits) {
  plan::BuildCache cache(64ull << 20);
  const plan::BuildPipeline build = BuildFor(engine::SsbQ1(Db()), 0);
  bool hit = true;
  ASSERT_TRUE(cache.GetOrBuild(build, &hit).ok());
  EXPECT_FALSE(hit);
  ASSERT_TRUE(cache.GetOrBuild(build, &hit).ok());
  EXPECT_TRUE(hit);
  const plan::BuildCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(BuildCacheTest, SharedHandleSurvivesEviction) {
  const plan::BuildPipeline a = BuildFor(engine::SsbQ2(Db()), 0);
  const plan::BuildPipeline b = BuildFor(engine::SsbQ2(Db()), 1);
  // Capacity fits either table alone but not both: inserting b evicts a.
  plan::BuildCache cache(std::max(a.table_bytes, b.table_bytes));
  Result<std::shared_ptr<const plan::DimensionTable>> table_a =
      cache.GetOrBuild(a);
  ASSERT_TRUE(table_a.ok());
  ASSERT_TRUE(cache.GetOrBuild(b).ok());
  plan::BuildCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 1u);
  // The evicted table is still alive through the caller's handle
  // (eviction is a cache-policy event, not a free).
  EXPECT_GT(table_a.value()->entries(), 0u);
  // Re-requesting a misses again.
  bool hit = true;
  ASSERT_TRUE(cache.GetOrBuild(a, &hit).ok());
  EXPECT_FALSE(hit);
}

TEST(BuildCacheTest, SingleFlightBuildsOnce) {
  plan::BuildCache cache(64ull << 20);
  const plan::BuildPipeline build = BuildFor(engine::SsbQ1(Db()), 0);
  constexpr int kThreads = 8;
  std::atomic<int> ready{0};
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) std::this_thread::yield();
      if (!cache.GetOrBuild(build).ok()) failures.fetch_add(1);
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  const plan::BuildCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.hits + stats.misses, static_cast<std::uint64_t>(kThreads));
  // Every miss either became the one builder or waited on its flight;
  // once the entry is resident all later requests hit. Exactly one
  // build ever ran.
  EXPECT_EQ(stats.misses - stats.single_flight_waits, 1u);
}

TEST(BuildCacheTest, FailedBuildPropagatesAndClearsFlight) {
  plan::BuildCache cache(64ull << 20);
  const plan::BuildPipeline build = BuildFor(Poison().query, 0);
  Result<std::shared_ptr<const plan::DimensionTable>> first =
      cache.GetOrBuild(build);
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.status().code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(cache.stats().entries, 0u);
  // The failed flight cleared; a later request retries (and fails the
  // same way) rather than observing a poisoned slot.
  Result<std::shared_ptr<const plan::DimensionTable>> second =
      cache.GetOrBuild(build);
  EXPECT_EQ(second.status().code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(BuildCacheTest, ZeroCapacityStillDeduplicates) {
  plan::BuildCache cache(0);
  const plan::BuildPipeline build = BuildFor(engine::SsbQ1(Db()), 0);
  bool hit = true;
  ASSERT_TRUE(cache.GetOrBuild(build, &hit).ok());
  EXPECT_FALSE(hit);
  ASSERT_TRUE(cache.GetOrBuild(build, &hit).ok());
  EXPECT_FALSE(hit);  // nothing resident
  EXPECT_EQ(cache.stats().entries, 0u);
}

// ---------------------------------------------------------------------
// QueryEngine: admission, deadlines, cancellation, containment.

TEST(QueryEngineTest, CompletesAndMatchesSolo) {
  const engine::Query query = engine::SsbQ1(Db());
  const engine::QueryResult expected = Solo(query);
  server::QueryEngine engine;
  Result<std::shared_ptr<server::QueryHandle>> handle =
      engine.Submit(query);
  ASSERT_TRUE(handle.ok()) << handle.status();
  const Result<engine::ExecReport>& report = handle.value()->Wait();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report.value().result, expected);
  EXPECT_EQ(handle.value()->state(), server::QueryState::kDone);
  EXPECT_EQ(engine.stats().completed, 1u);
}

TEST(QueryEngineTest, AdmissionShedsWhenQueueFull) {
  server::EngineOptions options;
  options.queue_capacity = 2;
  options.session_threads = 1;
  server::QueryEngine engine(options);
  engine.Pause();  // schedulers hold off: the queue fills deterministically

  const engine::Query query = engine::SsbQ1(Db());
  const engine::QueryResult expected = Solo(query);
  std::vector<std::shared_ptr<server::QueryHandle>> admitted;
  for (int i = 0; i < 2; ++i) {
    Result<std::shared_ptr<server::QueryHandle>> handle =
        engine.Submit(query);
    ASSERT_TRUE(handle.ok()) << handle.status();
    admitted.push_back(handle.value());
  }
  Result<std::shared_ptr<server::QueryHandle>> rejected =
      engine.Submit(query);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(engine.stats().shed, 1u);
  EXPECT_EQ(engine.stats().queue_depth, 2u);

  engine.Resume();
  for (const auto& handle : admitted) {
    const Result<engine::ExecReport>& report = handle->Wait();
    ASSERT_TRUE(report.ok()) << report.status();
    EXPECT_EQ(report.value().result, expected);
  }
}

TEST(QueryEngineTest, ExpiredDeadlineResolvesWithoutClaimingWork) {
  server::EngineOptions options;
  options.session_threads = 1;
  server::QueryEngine engine(options);
  engine.Pause();

  server::SubmitOptions submit;
  submit.deadline_s = 1e-9;  // expires while queued
  Result<std::shared_ptr<server::QueryHandle>> handle =
      engine.Submit(engine::SsbQ1(Db()), submit);
  ASSERT_TRUE(handle.ok()) << handle.status();
  std::this_thread::sleep_for(std::chrono::milliseconds(1));

  obs::Counter& morsels =
      obs::MetricsRegistry::Instance().GetCounter("plan.morsels");
  obs::Counter& builds =
      obs::MetricsRegistry::Instance().GetCounter("plan.dim_tables_built");
  const std::uint64_t morsels_before = morsels.value();
  const std::uint64_t builds_before = builds.value();
  engine.Resume();
  const Result<engine::ExecReport>& report = handle.value()->Wait();
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kDeadlineExceeded);
  // The cancellation bound: an expired query claims zero morsels and
  // builds zero tables — its workers were never burned.
  EXPECT_EQ(morsels.value(), morsels_before);
  EXPECT_EQ(builds.value(), builds_before);
  EXPECT_EQ(engine.stats().deadline_exceeded, 1u);
}

TEST(QueryEngineTest, CancelledWhileQueuedResolvesCancelled) {
  server::EngineOptions options;
  options.session_threads = 1;
  server::QueryEngine engine(options);
  engine.Pause();
  Result<std::shared_ptr<server::QueryHandle>> handle =
      engine.Submit(engine::SsbQ1(Db()));
  ASSERT_TRUE(handle.ok()) << handle.status();
  handle.value()->Cancel();
  engine.Resume();
  const Result<engine::ExecReport>& report = handle.value()->Wait();
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(engine.stats().cancelled, 1u);
}

TEST(QueryEngineTest, RunningQueryCancelsWithinBound) {
  // A mid-flight cancel: the query may already be executing when the
  // token fires; it must still resolve (with kCancelled if the token
  // won, or OK if it finished first) — never hang.
  server::QueryEngine engine;
  Result<std::shared_ptr<server::QueryHandle>> handle =
      engine.Submit(engine::SsbQ3(Db()));
  ASSERT_TRUE(handle.ok()) << handle.status();
  handle.value()->Cancel();
  const Result<engine::ExecReport>& report = handle.value()->Wait();
  if (!report.ok()) {
    EXPECT_EQ(report.status().code(), StatusCode::kCancelled);
  }
}

TEST(QueryEngineTest, CompileErrorRejectedSynchronously) {
  server::QueryEngine engine;
  engine::Query invalid;
  invalid.fact = &Db().lineorder;
  invalid.measure_column = "no_such_column";
  Result<std::shared_ptr<server::QueryHandle>> handle =
      engine.Submit(invalid);
  ASSERT_FALSE(handle.ok());
  EXPECT_EQ(handle.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(engine.stats().compile_rejected, 1u);
  EXPECT_EQ(engine.stats().admitted, 0u);
}

TEST(QueryEngineTest, FaultExhaustionIsContained) {
  // One poisoned query fails its build; concurrent siblings complete
  // with results bit-identical to solo execution, and the engine (pool,
  // shared cache) keeps serving afterwards.
  const engine::Query q1 = engine::SsbQ1(Db());
  const engine::Query q2 = engine::SsbQ2(Db());
  const engine::QueryResult expected1 = Solo(q1);
  const engine::QueryResult expected2 = Solo(q2);

  server::EngineOptions options;
  options.session_threads = 2;
  options.queue_capacity = 16;
  server::QueryEngine engine(options);

  Result<std::shared_ptr<server::QueryHandle>> poisoned =
      engine.Submit(Poison().query);
  std::vector<std::shared_ptr<server::QueryHandle>> siblings;
  for (int i = 0; i < 4; ++i) {
    Result<std::shared_ptr<server::QueryHandle>> handle =
        engine.Submit(i % 2 == 0 ? q1 : q2);
    ASSERT_TRUE(handle.ok()) << handle.status();
    siblings.push_back(handle.value());
  }

  ASSERT_TRUE(poisoned.ok()) << poisoned.status();
  const Result<engine::ExecReport>& poison_report = poisoned.value()->Wait();
  ASSERT_FALSE(poison_report.ok());
  EXPECT_EQ(poison_report.status().code(), StatusCode::kAlreadyExists);

  for (std::size_t i = 0; i < siblings.size(); ++i) {
    const Result<engine::ExecReport>& report = siblings[i]->Wait();
    ASSERT_TRUE(report.ok()) << report.status();
    EXPECT_EQ(report.value().result, i % 2 == 0 ? expected1 : expected2);
  }
  EXPECT_EQ(engine.stats().failed, 1u);
  EXPECT_EQ(engine.stats().completed, 4u);

  // The engine is not poisoned: a fresh submission still completes.
  Result<std::shared_ptr<server::QueryHandle>> after = engine.Submit(q1);
  ASSERT_TRUE(after.ok()) << after.status();
  const Result<engine::ExecReport>& after_report = after.value()->Wait();
  ASSERT_TRUE(after_report.ok()) << after_report.status();
  EXPECT_EQ(after_report.value().result, expected1);
}

TEST(QueryEngineTest, SaturatedGpuBudgetDegradesToCpu) {
  const engine::Query query = engine::SsbQ1(Db());
  const engine::QueryResult expected = Solo(query);
  server::EngineOptions options;
  options.session_threads = 1;
  options.queue_capacity = 4;
  options.gpu_budget_bytes = 1024;  // one in-flight footprint saturates it
  server::QueryEngine engine(options);
  engine.Pause();

  Result<std::shared_ptr<server::QueryHandle>> first =
      engine.Submit(query);
  Result<std::shared_ptr<server::QueryHandle>> second =
      engine.Submit(query);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  // The second query compiled against the first's in-flight footprint:
  // forced CPU placement instead of queueing for device memory.
  EXPECT_EQ(engine.stats().degraded_to_cpu, 1u);
  engine.Resume();

  const Result<engine::ExecReport>& report1 = first.value()->Wait();
  const Result<engine::ExecReport>& report2 = second.value()->Wait();
  ASSERT_TRUE(report1.ok()) << report1.status();
  ASSERT_TRUE(report2.ok()) << report2.status();
  EXPECT_EQ(report1.value().result, expected);
  EXPECT_EQ(report2.value().result, expected);
  EXPECT_FALSE(report2.value().used_gpu);
}

TEST(QueryEngineTest, SharedCacheReusesBuildsAcrossQueries) {
  const engine::Query query = engine::SsbQ1(Db());
  server::EngineOptions options;
  options.session_threads = 1;
  server::QueryEngine engine(options);
  Result<std::shared_ptr<server::QueryHandle>> first =
      engine.Submit(query);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first.value()->Wait().ok());
  Result<std::shared_ptr<server::QueryHandle>> second =
      engine.Submit(query);
  ASSERT_TRUE(second.ok());
  const Result<engine::ExecReport>& report = second.value()->Wait();
  ASSERT_TRUE(report.ok());
  // The second query's build stage hit the shared cache.
  EXPECT_EQ(report.value().dim_tables_reused, 1u);
  EXPECT_EQ(report.value().dim_tables_built, 0u);
  EXPECT_GE(engine.build_cache().stats().hits, 1u);
}

TEST(QueryEngineTest, ShutdownDrainsQueuedQueries) {
  server::EngineOptions options;
  options.session_threads = 1;
  options.queue_capacity = 8;
  server::QueryEngine engine(options);
  engine.Pause();
  std::vector<std::shared_ptr<server::QueryHandle>> handles;
  for (int i = 0; i < 3; ++i) {
    Result<std::shared_ptr<server::QueryHandle>> handle =
        engine.Submit(engine::SsbQ1(Db()));
    ASSERT_TRUE(handle.ok());
    handles.push_back(handle.value());
  }
  // Shutdown overrides the pause and drains: every handle resolves.
  engine.Shutdown();
  for (const auto& handle : handles) {
    EXPECT_TRUE(handle->Done());
  }
  Result<std::shared_ptr<server::QueryHandle>> late =
      engine.Submit(engine::SsbQ1(Db()));
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), StatusCode::kUnavailable);
}

// ---------------------------------------------------------------------
// Introspection: QueryEngine::Snapshot() and the flight recorder.

TEST(QueryEngineTest, SnapshotReportsQueueCacheWindowAndSlo) {
  server::EngineOptions options;
  options.session_threads = 1;
  options.queue_capacity = 8;
  server::QueryEngine engine(options);
  engine.Pause();

  server::SubmitOptions submit;
  submit.tag = "snap-test";
  Result<std::shared_ptr<server::QueryHandle>> first =
      engine.Submit(engine::SsbQ1(Db()), submit);
  Result<std::shared_ptr<server::QueryHandle>> second =
      engine.Submit(engine::SsbQ1(Db()), submit);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());

  // Queued queries appear as rows with their submit tag and age.
  server::EngineSnapshot snapshot = engine.Snapshot();
  EXPECT_EQ(snapshot.stats.queue_depth, 2u);
  ASSERT_EQ(snapshot.queries.size(), 2u);
  for (const server::QueryRow& row : snapshot.queries) {
    EXPECT_EQ(row.state, server::QueryState::kQueued);
    EXPECT_EQ(row.tag, "snap-test");
    EXPECT_GE(row.age_s, 0.0);
  }

  engine.Resume();
  ASSERT_TRUE(first.value()->Wait().ok());
  ASSERT_TRUE(second.value()->Wait().ok());

  snapshot = engine.Snapshot();
  // Resolved queries leave the table; their latencies feed the window.
  EXPECT_TRUE(snapshot.queries.empty());
  EXPECT_EQ(snapshot.latency_us.count, 2u);
  EXPECT_GE(snapshot.latency_us.p99, snapshot.latency_us.p50);
  EXPECT_GT(snapshot.latency_us.rate_per_s, 0.0);
  // The second query hit the shared build cache, and the snapshot lists
  // what is resident.
  EXPECT_GT(snapshot.cache_hit_ratio, 0.0);
  EXPECT_LE(snapshot.cache_hit_ratio, 1.0);
  EXPECT_FALSE(snapshot.cache_contents.empty());
  std::uint64_t contents_bytes = 0;
  for (const plan::BuildCache::ContentsEntry& entry :
       snapshot.cache_contents) {
    EXPECT_FALSE(entry.key.empty());
    contents_bytes += entry.bytes;
  }
  EXPECT_EQ(contents_bytes, snapshot.cache.resident_bytes);
  // Clean run: no incidents, and with no SLO configured the verdict is
  // vacuously healthy.
  EXPECT_EQ(snapshot.incidents.captured, 0u);
  EXPECT_FALSE(snapshot.slo_configured);
  EXPECT_TRUE(snapshot.slo_ok);
  EXPECT_TRUE(snapshot.slo_violation.empty());
}

TEST(QueryEngineTest, SloViolationSurfacesInSnapshot) {
  server::EngineOptions options;
  options.session_threads = 1;
  // A sub-microsecond p99 ceiling: any real query violates it.
  options.slo_p99_us = 0.5;
  server::QueryEngine engine(options);
  Result<std::shared_ptr<server::QueryHandle>> handle =
      engine.Submit(engine::SsbQ1(Db()));
  ASSERT_TRUE(handle.ok());
  ASSERT_TRUE(handle.value()->Wait().ok());

  const server::EngineSnapshot snapshot = engine.Snapshot();
  EXPECT_TRUE(snapshot.slo_configured);
  EXPECT_FALSE(snapshot.slo_ok);
  EXPECT_FALSE(snapshot.slo_violation.empty());
  EXPECT_DOUBLE_EQ(snapshot.slo_p99_us, 0.5);
}

TEST(QueryEngineTest, SloWithEmptyWindowIsVacuouslyHealthy) {
  server::EngineOptions options;
  options.slo_p99_us = 0.5;
  options.slo_min_qps = 1e9;
  server::QueryEngine engine(options);
  // No resolutions yet: targets are configured but nothing violates.
  const server::EngineSnapshot snapshot = engine.Snapshot();
  EXPECT_TRUE(snapshot.slo_configured);
  EXPECT_TRUE(snapshot.slo_ok);
}

TEST(QueryEngineTest, FlightRecorderCapturesLadderExhaustion) {
  // The acceptance scenario: one query exhausts its fault ladder while
  // siblings run under injected device-OOM (which the ladder absorbs by
  // re-placing on the CPU). Exactly the terminal failure leaves an
  // incident artifact; the absorbed-fault siblings complete
  // bit-identical to solo execution and leave none.
  const engine::Query q1 = engine::SsbQ1(Db());
  const engine::QueryResult expected = Solo(q1);

  server::EngineOptions options;
  options.session_threads = 2;
  options.queue_capacity = 16;
  server::QueryEngine engine(options);

  // Device-OOM on every allocation: rung 2 of the ladder spills the
  // build/probe to the CPU, so the query still succeeds.
  fault::FaultInjector oom(/*seed=*/13);
  fault::FaultSpec device_oom;
  device_oom.probability = 1.0;
  device_oom.code = StatusCode::kResourceExhausted;
  oom.Arm(fault::kAllocDevice, device_oom);

  server::SubmitOptions oom_submit;
  oom_submit.injector = &oom;
  oom_submit.tag = "oom-sibling";
  std::vector<std::shared_ptr<server::QueryHandle>> siblings;
  for (int i = 0; i < 2; ++i) {
    Result<std::shared_ptr<server::QueryHandle>> handle =
        engine.Submit(q1, oom_submit);
    ASSERT_TRUE(handle.ok()) << handle.status();
    siblings.push_back(handle.value());
  }
  server::SubmitOptions poison_submit;
  poison_submit.tag = "poison";
  Result<std::shared_ptr<server::QueryHandle>> poisoned =
      engine.Submit(Poison().query, poison_submit);
  ASSERT_TRUE(poisoned.ok()) << poisoned.status();

  const Result<engine::ExecReport>& poison_report = poisoned.value()->Wait();
  ASSERT_FALSE(poison_report.ok());
  for (const auto& handle : siblings) {
    const Result<engine::ExecReport>& report = handle->Wait();
    ASSERT_TRUE(report.ok()) << report.status();
    EXPECT_EQ(report.value().result, expected);
  }

  // Exactly one incident: the ladder-exhausted query, self-contained.
  const obs::FlightRecorder::Stats stats = engine.flight_recorder().stats();
  EXPECT_EQ(stats.captured, 1u) << "successes must not leave artifacts";
  EXPECT_EQ(stats.captured_by_kind.at("fault_ladder_exhausted"), 1u);
  const std::vector<obs::Incident> incidents =
      engine.flight_recorder().Incidents();
  ASSERT_EQ(incidents.size(), 1u);
  const obs::Incident& incident = incidents[0];
  EXPECT_EQ(incident.query_id, poisoned.value()->id());
  EXPECT_EQ(incident.kind, "fault_ladder_exhausted");
  EXPECT_EQ(incident.tag, "poison");
  EXPECT_EQ(incident.status, poison_report.status().ToString());
  EXPECT_FALSE(incident.plan_json.empty());
  EXPECT_FALSE(incident.report_json.empty());
  EXPECT_GT(incident.captured_ts_ns, 0u);
}

TEST(QueryEngineTest, DeadlineAndCancelLeaveTypedIncidents) {
  server::EngineOptions options;
  options.session_threads = 1;
  server::QueryEngine engine(options);
  engine.Pause();

  server::SubmitOptions late;
  late.deadline_s = 1e-9;
  late.tag = "late";
  Result<std::shared_ptr<server::QueryHandle>> expired =
      engine.Submit(engine::SsbQ1(Db()), late);
  ASSERT_TRUE(expired.ok());
  server::SubmitOptions killed;
  killed.tag = "killed";
  Result<std::shared_ptr<server::QueryHandle>> cancelled =
      engine.Submit(engine::SsbQ1(Db()), killed);
  ASSERT_TRUE(cancelled.ok());
  cancelled.value()->Cancel();
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  engine.Resume();

  EXPECT_EQ(expired.value()->Wait().status().code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(cancelled.value()->Wait().status().code(),
            StatusCode::kCancelled);

  const obs::FlightRecorder::Stats stats = engine.flight_recorder().stats();
  EXPECT_EQ(stats.captured, 2u);
  EXPECT_EQ(stats.captured_by_kind.at("deadline_expired"), 1u);
  EXPECT_EQ(stats.captured_by_kind.at("cancelled"), 1u);
  for (const obs::Incident& incident :
       engine.flight_recorder().Incidents()) {
    EXPECT_GT(incident.query_id, 0u);
    EXPECT_FALSE(incident.plan_json.empty());
  }
  // The snapshot mirrors the recorder totals.
  EXPECT_EQ(engine.Snapshot().incidents.captured, 2u);
}

// ---------------------------------------------------------------------
// TSan regression: concurrent submitters against one engine. Any data
// race in Submit/scheduler/cache/metrics surfaces here under
// -DPUMP_SANITIZE=thread (check.sh runs this binary in that build).

TEST(QueryEngineTest, PerDevicePoolsTrackInflightAndDrain) {
  const engine::Query query = engine::SsbQ1(Db());
  server::EngineOptions options;
  options.session_threads = 1;
  options.queue_capacity = 4;
  server::QueryEngine engine(options);
  engine.Pause();

  Result<std::shared_ptr<server::QueryHandle>> first = engine.Submit(query);
  Result<std::shared_ptr<server::QueryHandle>> second =
      engine.Submit(query);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());

  // Single-device plans charge one per-device pool; the pools always sum
  // to the aggregate in-flight figure.
  server::EngineStats stats = engine.stats();
  EXPECT_GT(stats.gpu_inflight_bytes, 0u);
  ASSERT_EQ(stats.device_inflight_bytes.size(), 1u);
  std::uint64_t pool_sum = 0;
  for (const auto& [device, bytes] : stats.device_inflight_bytes) {
    pool_sum += bytes;
  }
  EXPECT_EQ(pool_sum, stats.gpu_inflight_bytes);

  engine.Resume();
  ASSERT_TRUE(first.value()->Wait().ok());
  ASSERT_TRUE(second.value()->Wait().ok());
  stats = engine.stats();
  EXPECT_EQ(stats.gpu_inflight_bytes, 0u);
  for (const auto& [device, bytes] : stats.device_inflight_bytes) {
    EXPECT_EQ(bytes, 0u) << "device " << device;
  }
}

TEST(QueryEngineTest, ShardedSubmissionChargesEveryDevicePool) {
  const engine::Query query = engine::SsbQ1(Db());
  const engine::QueryResult expected = Solo(query);
  const hw::SystemProfile ring = hw::NvlinkRingProfile(4);
  server::EngineOptions options;
  options.session_threads = 1;
  options.queue_capacity = 4;
  options.profile = &ring;
  options.shard_devices =
      ring.topology.DevicesOfKind(hw::DeviceKind::kGpu);
  server::QueryEngine engine(options);
  engine.Pause();

  Result<std::shared_ptr<server::QueryHandle>> handle =
      engine.Submit(query);
  ASSERT_TRUE(handle.ok()) << handle.status();

  server::EngineStats stats = engine.stats();
  EXPECT_EQ(stats.device_inflight_bytes.size(), 4u);
  std::uint64_t pool_sum = 0;
  for (const auto& [device, bytes] : stats.device_inflight_bytes) {
    EXPECT_GT(bytes, 0u) << "device " << device;
    pool_sum += bytes;
  }
  EXPECT_EQ(pool_sum, stats.gpu_inflight_bytes);

  engine.Resume();
  const Result<engine::ExecReport>& report = handle.value()->Wait();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report.value().result, expected);
  stats = engine.stats();
  EXPECT_EQ(stats.gpu_inflight_bytes, 0u);
  for (const auto& [device, bytes] : stats.device_inflight_bytes) {
    EXPECT_EQ(bytes, 0u) << "device " << device;
  }
}

TEST(QueryEngineTest, ConcurrentSubmittersAllResolve) {
  const engine::Query q1 = engine::SsbQ1(Db());
  const engine::Query q2 = engine::SsbQ2(Db());
  const engine::Query q3 = engine::SsbQ3(Db());
  const engine::QueryResult expected[] = {Solo(q1), Solo(q2), Solo(q3)};
  const engine::Query* queries[] = {&q1, &q2, &q3};

  server::EngineOptions options;
  options.session_threads = 4;
  options.queue_capacity = 64;
  server::QueryEngine engine(options);

  constexpr std::size_t kSubmitters = 4;
  constexpr std::size_t kPerSubmitter = 4;
  std::atomic<int> mismatches{0};
  std::atomic<int> errors{0};
  std::vector<std::thread> submitters;
  for (std::size_t t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      for (std::size_t q = 0; q < kPerSubmitter; ++q) {
        const std::size_t pick = (t + q) % 3;
        server::SubmitOptions submit;
        submit.workers = 2;
        Result<std::shared_ptr<server::QueryHandle>> handle =
            engine.Submit(*queries[pick], submit);
        if (!handle.ok()) {
          errors.fetch_add(1);
          continue;
        }
        const Result<engine::ExecReport>& report = handle.value()->Wait();
        if (!report.ok()) {
          errors.fetch_add(1);
        } else if (!(report.value().result == expected[pick])) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& submitter : submitters) submitter.join();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(engine.stats().completed, kSubmitters * kPerSubmitter);
}

}  // namespace
}  // namespace pump
