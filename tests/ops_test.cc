#include "data/tpch.h"
#include "gtest/gtest.h"
#include "hw/system_profile.h"
#include "ops/q6.h"
#include "ops/q6_model.h"

namespace pump::ops {
namespace {

using data::GenerateLineitemQ6;
using data::LineitemQ6;
using hw::kCpu0;
using hw::kGpu0;
using transfer::TransferMethod;

Q6Result BruteForce(const LineitemQ6& table) {
  Q6Result expected;
  for (std::size_t i = 0; i < table.size(); ++i) {
    const bool qualifies =
        table.shipdate[i] >= data::kQ6DateLo &&
        table.shipdate[i] < data::kQ6DateHi &&
        table.discount[i] >= data::kQ6DiscountLo &&
        table.discount[i] <= data::kQ6DiscountHi &&
        table.quantity[i] < data::kQ6QuantityLt;
    if (qualifies) {
      expected.revenue += table.extendedprice[i] * table.discount[i];
      ++expected.qualifying_rows;
    }
  }
  return expected;
}

TEST(Q6FunctionalTest, BranchingMatchesBruteForce) {
  const LineitemQ6 table = GenerateLineitemQ6(100000, 3);
  EXPECT_EQ(RunQ6Branching(table), BruteForce(table));
}

TEST(Q6FunctionalTest, PredicatedMatchesBranching) {
  const LineitemQ6 table = GenerateLineitemQ6(100000, 5);
  EXPECT_EQ(RunQ6Predicated(table), RunQ6Branching(table));
}

TEST(Q6FunctionalTest, ParallelVariantsAgree) {
  const LineitemQ6 table = GenerateLineitemQ6(300000, 7);
  const Q6Result serial = RunQ6Branching(table);
  EXPECT_EQ(RunQ6BranchingParallel(table, 4), serial);
  EXPECT_EQ(RunQ6PredicatedParallel(table, 4), serial);
}

TEST(Q6FunctionalTest, ClusteredLayoutSameResult) {
  LineitemQ6 table = GenerateLineitemQ6(50000, 9);
  const Q6Result before = RunQ6Predicated(table);
  data::ClusterByShipdate(&table);
  EXPECT_EQ(RunQ6Predicated(table), before);
  EXPECT_EQ(RunQ6Branching(table), before);
}

TEST(Q6FunctionalTest, EmptyTable) {
  LineitemQ6 empty;
  EXPECT_EQ(RunQ6Branching(empty), Q6Result{});
  EXPECT_EQ(RunQ6Predicated(empty), Q6Result{});
}

TEST(Q6FunctionalTest, QualifyingFractionNearAnalytic) {
  const LineitemQ6 table = GenerateLineitemQ6(400000, 11);
  const Q6Result result = RunQ6Branching(table);
  EXPECT_NEAR(
      static_cast<double>(result.qualifying_rows) / 400000.0,
      data::Q6Selectivity(), 0.004);
}

class Q6ModelTest : public ::testing::Test {
 protected:
  double GRows(hw::DeviceId device, const hw::SystemProfile& profile,
               TransferMethod method, Q6Variant variant) const {
    Q6Model model(&profile);
    Result<Q6Timing> timing =
        model.Estimate(device, kCpu0, method, variant, kRows);
    EXPECT_TRUE(timing.ok()) << timing.status();
    return timing.value().RowsPerSecond().giga_per_second();
  }

  static constexpr double kRows = 6e9;  // ~ SF 1000.
  hw::SystemProfile ibm_ = hw::Ac922Profile();
  hw::SystemProfile intel_ = hw::XeonProfile();
};

TEST_F(Q6ModelTest, Fig15CpuBeatsNvlink) {
  // Fig. 15: the CPU outperforms NVLink 2.0 by up to 67%.
  const double cpu =
      GRows(kCpu0, ibm_, TransferMethod::kCoherence, Q6Variant::kBranching);
  const double nvlink =
      GRows(kGpu0, ibm_, TransferMethod::kCoherence, Q6Variant::kBranching);
  EXPECT_GT(cpu, nvlink);
  EXPECT_NEAR(cpu / nvlink, 1.67, 0.4);
}

TEST_F(Q6ModelTest, Fig15NvlinkCrushesPcie) {
  // Fig. 15: NVLink 2.0 achieves up to 9.8x over PCI-e 3.0.
  const double nvlink =
      GRows(kGpu0, ibm_, TransferMethod::kCoherence, Q6Variant::kBranching);
  const double pcie = GRows(kGpu0, intel_, TransferMethod::kZeroCopy,
                            Q6Variant::kBranching);
  EXPECT_GT(nvlink / pcie, 4.0);
  EXPECT_LT(nvlink / pcie, 14.0);
}

TEST_F(Q6ModelTest, Fig15BranchingBeatsPredicationOnNvlink) {
  // Fig. 15: counterintuitively, branching wins on the GPU with NVLink —
  // the low selectivity lets it skip transfers.
  const double branching =
      GRows(kGpu0, ibm_, TransferMethod::kCoherence, Q6Variant::kBranching);
  const double predicated =
      GRows(kGpu0, ibm_, TransferMethod::kCoherence, Q6Variant::kPredicated);
  EXPECT_GT(branching, predicated);
}

TEST_F(Q6ModelTest, BranchingDoesNotPayOnPcie) {
  // Over non-coherent PCI-e, chunked DMA cannot elide bytes and the
  // divergent pattern wastes packets: branching <= predication.
  const double branching = GRows(kGpu0, intel_, TransferMethod::kZeroCopy,
                                 Q6Variant::kBranching);
  const double predicated = GRows(kGpu0, intel_, TransferMethod::kZeroCopy,
                                  Q6Variant::kPredicated);
  EXPECT_LE(branching, predicated * 1.001);
}

TEST_F(Q6ModelTest, PredicatedGpuIsBandwidthBound) {
  // 20 B/row at 63 GiB/s -> ~3.4 G rows/s.
  const double predicated =
      GRows(kGpu0, ibm_, TransferMethod::kCoherence, Q6Variant::kPredicated);
  EXPECT_NEAR(predicated, 3.38, 0.35);
}

TEST_F(Q6ModelTest, ThroughputRoughlyFlatAcrossScaleFactors) {
  // Fig. 15: throughput saturates with scale; SF 1000 is no slower per
  // row than SF 100 (slightly faster as launch overheads amortize).
  Q6Model model(&ibm_);
  const double sf100 = model
                           .Estimate(kGpu0, kCpu0, TransferMethod::kCoherence,
                                     Q6Variant::kBranching, 0.6e9)
                           .value()
                           .RowsPerSecond()
                           .per_second();
  const double sf1000 = model
                            .Estimate(kGpu0, kCpu0, TransferMethod::kCoherence,
                                      Q6Variant::kBranching, 6e9)
                            .value()
                            .RowsPerSecond()
                            .per_second();
  EXPECT_NEAR(sf1000 / sf100, 1.0, 0.05);
  EXPECT_GE(sf1000, sf100);
}

TEST_F(Q6ModelTest, VariantNames) {
  EXPECT_STREQ(Q6VariantToString(Q6Variant::kBranching), "branching");
  EXPECT_STREQ(Q6VariantToString(Q6Variant::kPredicated), "predicated");
}

TEST_F(Q6ModelTest, CoherenceRejectedOnPcie) {
  Q6Model model(&intel_);
  Result<Q6Timing> timing =
      model.Estimate(kGpu0, kCpu0, TransferMethod::kCoherence,
                     Q6Variant::kBranching, kRows);
  ASSERT_FALSE(timing.ok());
  EXPECT_EQ(timing.status().code(), StatusCode::kUnsupported);
}

}  // namespace
}  // namespace pump::ops
