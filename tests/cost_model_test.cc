#include <cmath>

#include "common/units.h"
#include "data/workloads.h"
#include "gtest/gtest.h"
#include "hw/system_profile.h"
#include "join/cost_model.h"

namespace pump::join {
namespace {

using data::WorkloadA;
using data::WorkloadB;
using data::WorkloadC;
using data::WorkloadC16;
using data::WorkloadSpec;
using hw::kCpu0;
using hw::kCpu1;
using hw::kGpu0;
using hw::kGpu1;
using transfer::TransferMethod;

class NopaModelTest : public ::testing::Test {
 protected:
  double Gt(const JoinTiming& t, const WorkloadSpec& w) const {
    return ToGTuplesPerSecond(
        t.Throughput(static_cast<double>(w.total_tuples())));
  }

  NopaConfig GpuConfig(const hw::SystemProfile&,
                       hw::MemoryNodeId ht_node) const {
    NopaConfig config;
    config.device = kGpu0;
    config.r_location = kCpu0;
    config.s_location = kCpu0;
    config.hash_table = HashTablePlacement::Single(ht_node);
    config.method = TransferMethod::kCoherence;
    return config;
  }

  hw::SystemProfile ibm_ = hw::Ac922Profile();
  hw::SystemProfile intel_ = hw::XeonProfile();
  NopaJoinModel ibm_model_{&ibm_};
  NopaJoinModel intel_model_{&intel_};
};

TEST_F(NopaModelTest, Fig12NvlinkCoherenceThroughputBand) {
  // Fig. 12: workload A over NVLink 2.0 with the Coherence method reaches
  // 3.83 G Tuples/s (hash table in GPU memory).
  Result<JoinTiming> timing =
      ibm_model_.Estimate(GpuConfig(ibm_, kGpu0), WorkloadA());
  ASSERT_TRUE(timing.ok());
  EXPECT_NEAR(Gt(timing.value(), WorkloadA()), 3.83, 0.6);
}

TEST_F(NopaModelTest, Fig12PcieZeroCopyThroughputBand) {
  // Fig. 12: workload A over PCI-e 3.0 with Zero-Copy reaches 0.77.
  NopaConfig config = GpuConfig(intel_, kGpu0);
  config.method = TransferMethod::kZeroCopy;
  config.relation_memory = memory::MemoryKind::kPinned;
  Result<JoinTiming> timing = intel_model_.Estimate(config, WorkloadA());
  ASSERT_TRUE(timing.ok());
  EXPECT_NEAR(Gt(timing.value(), WorkloadA()), 0.77, 0.15);
}

TEST_F(NopaModelTest, CoherenceUnsupportedOnPcie) {
  NopaConfig config = GpuConfig(intel_, kGpu0);
  Result<JoinTiming> timing = intel_model_.Estimate(config, WorkloadA());
  ASSERT_FALSE(timing.ok());
  EXPECT_EQ(timing.status().code(), StatusCode::kUnsupported);
}

TEST_F(NopaModelTest, Fig13DataLocalityDegradesWithHops) {
  // Fig. 13: moving the base relations further away (GPU -> CPU -> rCPU ->
  // rGPU) monotonically reduces throughput; 1->2 hops hurts more than
  // 2->3 (the X-Bus binds).
  const WorkloadSpec a = data::ScaleToBytes(WorkloadA(), 13 * kGiB);
  double previous = 1e18;
  std::vector<double> tputs;
  for (hw::MemoryNodeId node : {kGpu0, kCpu0, kCpu1, kGpu1}) {
    NopaConfig config = GpuConfig(ibm_, kGpu0);
    config.r_location = node;
    config.s_location = node;
    Result<JoinTiming> timing = ibm_model_.Estimate(config, a);
    ASSERT_TRUE(timing.ok());
    const double tput = Gt(timing.value(), a);
    EXPECT_LT(tput, previous);
    tputs.push_back(tput);
    previous = tput;
  }
  EXPECT_GT(tputs[1] - tputs[2], tputs[2] - tputs[3]);
}

TEST_F(NopaModelTest, Fig13WorkloadBInCacheSpeedup) {
  // Fig. 13: with everything GPU-local, workload B's small hash table is
  // served from the GPU L2 and reaches ~19 G Tuples/s — about 5-6x the
  // 1-hop NVLink rate.
  const WorkloadSpec b = data::ScaleToBytes(WorkloadB(), 12 * kGiB);
  NopaConfig local = GpuConfig(ibm_, kGpu0);
  local.r_location = kGpu0;
  local.s_location = kGpu0;
  Result<JoinTiming> local_t = ibm_model_.Estimate(local, b);
  ASSERT_TRUE(local_t.ok());
  EXPECT_NEAR(Gt(local_t.value(), b), 19.0, 4.0);

  NopaConfig remote = GpuConfig(ibm_, kGpu0);
  Result<JoinTiming> remote_t = ibm_model_.Estimate(remote, b);
  ASSERT_TRUE(remote_t.ok());
  const double ratio =
      Gt(local_t.value(), b) / Gt(remote_t.value(), b);
  EXPECT_GT(ratio, 3.5);
  EXPECT_LT(ratio, 8.0);
}

TEST_F(NopaModelTest, Fig14HashTableLocalityCliff) {
  // Fig. 14 (workload A): one NVLink hop to the hash table costs 75-85% of
  // throughput; further hops keep degrading it.
  double previous = 1e18;
  std::vector<double> tputs;
  for (hw::MemoryNodeId node : {kGpu0, kCpu0, kCpu1, kGpu1}) {
    Result<JoinTiming> timing =
        ibm_model_.Estimate(GpuConfig(ibm_, node), WorkloadA());
    ASSERT_TRUE(timing.ok());
    tputs.push_back(Gt(timing.value(), WorkloadA()));
    EXPECT_LT(tputs.back(), previous);
    previous = tputs.back();
  }
  const double drop = 1.0 - tputs[1] / tputs[0];
  EXPECT_GT(drop, 0.70);
  EXPECT_LT(drop, 0.90);
}

TEST_F(NopaModelTest, Fig14WorkloadBNotCachedRemotely) {
  // Fig. 14: the GPU L2 is memory-side and cannot cache a remote hash
  // table, so even tiny workload B tables are slow over NVLink.
  Result<JoinTiming> local =
      ibm_model_.Estimate(GpuConfig(ibm_, kGpu0), WorkloadB());
  NopaConfig remote_cfg = GpuConfig(ibm_, kCpu0);
  Result<JoinTiming> remote = ibm_model_.Estimate(remote_cfg, WorkloadB());
  ASSERT_TRUE(local.ok());
  ASSERT_TRUE(remote.ok());
  EXPECT_GT(Gt(local.value(), WorkloadB()) / Gt(remote.value(), WorkloadB()),
            4.0);
}

TEST_F(NopaModelTest, Fig16ProbeSideScaling) {
  // Fig. 16: growing |S| from 128M to 8192M tuples (|R| = 128M fixed)
  // improves NVLink throughput (build amortizes) while PCI-e stays flat
  // and slow; NVLink ends up 3-6x faster than PCI-e.
  double nvlink_small = 0.0, nvlink_large = 0.0;
  double pcie_large = 0.0;
  for (const std::uint64_t s : {128ull << 20, 8192ull << 20}) {
    const WorkloadSpec w = WorkloadC16(128ull << 20, s);
    Result<JoinTiming> nv =
        ibm_model_.Estimate(GpuConfig(ibm_, kGpu0), w);
    ASSERT_TRUE(nv.ok());
    if (s == 128ull << 20) {
      nvlink_small = Gt(nv.value(), w);
    } else {
      nvlink_large = Gt(nv.value(), w);
      NopaConfig pcie = GpuConfig(intel_, kGpu0);
      pcie.method = TransferMethod::kZeroCopy;
      pcie.relation_memory = memory::MemoryKind::kPinned;
      Result<JoinTiming> pc = intel_model_.Estimate(pcie, w);
      ASSERT_TRUE(pc.ok());
      pcie_large = Gt(pc.value(), w);
    }
  }
  EXPECT_GT(nvlink_large, nvlink_small);
  EXPECT_GT(nvlink_large / pcie_large, 3.0);
  EXPECT_LT(nvlink_large / pcie_large, 8.0);
}

TEST_F(NopaModelTest, Fig17HybridTableDegradesGracefully) {
  // Fig. 17: out-of-core hash tables collapse on PCI-e (~97% decline) but
  // degrade gracefully on NVLink, and the hybrid table buys another
  // 1-2.2x.
  const WorkloadSpec big = WorkloadC16(1536ull << 20, 1536ull << 20);
  ASSERT_GT(big.hash_table_bytes(), 16ull * kGiB);

  NopaConfig cpu_ht = GpuConfig(ibm_, kCpu0);
  Result<JoinTiming> nvlink_cpu_ht = ibm_model_.Estimate(cpu_ht, big);
  ASSERT_TRUE(nvlink_cpu_ht.ok());

  // Hybrid: 15 GiB of the 24 GiB table in GPU memory.
  NopaConfig hybrid = GpuConfig(ibm_, kGpu0);
  hybrid.hash_table = HashTablePlacement::Hybrid(
      kGpu0, kCpu0, 15.0 * kGiB / static_cast<double>(big.hash_table_bytes()));
  Result<JoinTiming> nvlink_hybrid = ibm_model_.Estimate(hybrid, big);
  ASSERT_TRUE(nvlink_hybrid.ok());

  const double speedup = Gt(nvlink_hybrid.value(), big) /
                         Gt(nvlink_cpu_ht.value(), big);
  EXPECT_GT(speedup, 1.2);
  EXPECT_LT(speedup, 2.5);

  // PCI-e with the table in CPU memory collapses.
  NopaConfig pcie = GpuConfig(intel_, kCpu0);
  pcie.method = TransferMethod::kZeroCopy;
  pcie.relation_memory = memory::MemoryKind::kPinned;
  Result<JoinTiming> pcie_t = intel_model_.Estimate(pcie, big);
  ASSERT_TRUE(pcie_t.ok());
  EXPECT_LT(Gt(pcie_t.value(), big), 0.1);
}

TEST_F(NopaModelTest, HybridRateInterpolatesMonotonically) {
  // Sec. 5.3 model: throughput grows monotonically with the GPU fraction.
  const WorkloadSpec big = WorkloadC16(1536ull << 20, 1536ull << 20);
  double previous = 0.0;
  for (double f : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const HashTablePlacement placement =
        HashTablePlacement::Hybrid(kGpu0, kCpu0, f);
    const double rate =
        ibm_model_.HashTableAccessRate(kGpu0, placement, big).per_second();
    EXPECT_GT(rate, previous) << "fraction " << f;
    previous = rate;
  }
}

TEST_F(NopaModelTest, Fig18BuildToProbeRatio) {
  // Fig. 18: at 1:1 the build phase dominates (~70% of time); larger
  // ratios shift time to the probe phase and raise throughput.
  double previous_tput = 0.0;
  for (int ratio : {1, 2, 4, 8, 16}) {
    const WorkloadSpec w =
        WorkloadC16(128ull << 20, (128ull << 20) * ratio);
    Result<JoinTiming> timing =
        ibm_model_.Estimate(GpuConfig(ibm_, kGpu0), w);
    ASSERT_TRUE(timing.ok());
    const double tput = Gt(timing.value(), w);
    EXPECT_GT(tput, previous_tput) << "ratio 1:" << ratio;
    previous_tput = tput;
    if (ratio == 1) {
      const double build_share =
          timing.value().build_s / timing.value().total_s();
      EXPECT_GT(build_share, 0.45);
    }
    if (ratio == 16) {
      const double build_share =
          timing.value().build_s / timing.value().total_s();
      EXPECT_LT(build_share, 0.25);
    }
  }
}

TEST_F(NopaModelTest, Fig19SkewHelpsCpuResidentTables) {
  // Fig. 19: higher Zipf exponents raise throughput when the hash table is
  // in CPU memory (hot entries cache on the GPU), but not when it is
  // already in GPU memory (the stream is the bottleneck).
  WorkloadSpec w = WorkloadA();
  NopaConfig cpu_ht = GpuConfig(ibm_, kCpu0);
  NopaConfig gpu_ht = GpuConfig(ibm_, kGpu0);

  w.zipf_exponent = 0.0;
  const double flat_cpu =
      Gt(ibm_model_.Estimate(cpu_ht, w).value(), w);
  const double flat_gpu =
      Gt(ibm_model_.Estimate(gpu_ht, w).value(), w);
  w.zipf_exponent = 1.75;
  const double skew_cpu =
      Gt(ibm_model_.Estimate(cpu_ht, w).value(), w);
  const double skew_gpu =
      Gt(ibm_model_.Estimate(gpu_ht, w).value(), w);

  EXPECT_GT(skew_cpu / flat_cpu, 2.0);   // Paper: ~3.6x for NVLink.
  EXPECT_LT(skew_gpu / flat_gpu, 1.3);   // Flat when GPU-resident.
}

TEST_F(NopaModelTest, Fig19SkewMonotonic) {
  WorkloadSpec w = WorkloadA();
  NopaConfig cpu_ht = GpuConfig(ibm_, kCpu0);
  double previous = 0.0;
  for (double z : {0.0, 0.5, 1.0, 1.5, 1.75}) {
    w.zipf_exponent = z;
    const double tput = Gt(ibm_model_.Estimate(cpu_ht, w).value(), w);
    EXPECT_GE(tput, previous * 0.999) << "z=" << z;
    previous = tput;
  }
}

TEST_F(NopaModelTest, Fig20SelectivityRaisesCostOfMatches) {
  // Fig. 20: throughput decreases as selectivity grows (matches load the
  // value cache lines); the effect is ~30% for NVLink with a GPU table.
  WorkloadSpec w = WorkloadA();
  NopaConfig gpu_ht = GpuConfig(ibm_, kGpu0);
  w.selectivity = 0.0;
  const double low = Gt(ibm_model_.Estimate(gpu_ht, w).value(), w);
  w.selectivity = 1.0;
  const double high = Gt(ibm_model_.Estimate(gpu_ht, w).value(), w);
  EXPECT_GT(low, high);
  // Direction matches the paper; the modelled magnitude is smaller than
  // the measured 30% because the probe stream hides part of the extra
  // value-line traffic (documented in EXPERIMENTS.md).
  const double drop = 1.0 - high / low;
  EXPECT_GT(drop, 0.04);
  EXPECT_LT(drop, 0.45);
}

TEST_F(NopaModelTest, CpuNopaBand) {
  // Fig. 21a: single-socket POWER9 NOPA lands near 0.5 G Tuples/s.
  NopaConfig config;
  config.device = kCpu0;
  config.r_location = kCpu0;
  config.s_location = kCpu0;
  config.hash_table = HashTablePlacement::Single(kCpu0);
  Result<JoinTiming> timing = ibm_model_.Estimate(config, WorkloadA());
  ASSERT_TRUE(timing.ok());
  EXPECT_NEAR(Gt(timing.value(), WorkloadA()), 0.5, 0.2);
}

TEST_F(NopaModelTest, RadixBaselineBand) {
  // Figs. 16/17: the tuned CPU radix join (PRA) sits near 0.5 G Tuples/s
  // and the PCI-e in-GPU join beats it by up to ~1.9x.
  RadixJoinModel radix(&ibm_);
  const JoinTiming timing = radix.Estimate(kCpu0, WorkloadC16(1024ull << 20,
                                                              1024ull << 20));
  const WorkloadSpec w = WorkloadC16(1024ull << 20, 1024ull << 20);
  EXPECT_NEAR(Gt(timing, w), 0.5, 0.25);
}

TEST_F(NopaModelTest, PlacementHelpers) {
  const HashTablePlacement single = HashTablePlacement::Single(kGpu0);
  ASSERT_EQ(single.parts.size(), 1u);
  EXPECT_DOUBLE_EQ(single.parts[0].fraction, 1.0);

  const HashTablePlacement hybrid =
      HashTablePlacement::Hybrid(kGpu0, kCpu0, 0.7);
  ASSERT_EQ(hybrid.parts.size(), 2u);
  EXPECT_DOUBLE_EQ(hybrid.parts[0].fraction, 0.7);
  EXPECT_DOUBLE_EQ(hybrid.parts[1].fraction, 0.3);

  memory::Buffer buffer(100, memory::MemoryKind::kDevice,
                        {memory::Extent{kGpu0, 60}, memory::Extent{kCpu0, 40}},
                        /*materialize=*/false);
  const HashTablePlacement from_buffer =
      HashTablePlacement::FromBuffer(buffer);
  ASSERT_EQ(from_buffer.parts.size(), 2u);
  EXPECT_DOUBLE_EQ(from_buffer.parts[0].fraction, 0.6);
}

}  // namespace
}  // namespace pump::join
