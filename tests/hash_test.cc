#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "data/zipf.h"
#include "exec/parallel.h"
#include "gtest/gtest.h"
#include "hash/hash_function.h"
#include "hash/hash_table.h"
#include "hash/hybrid_table.h"
#include "hw/topology.h"
#include "memory/allocator.h"

namespace pump::hash {
namespace {

TEST(HashFunctionTest, MurmurAvalanches) {
  // Flipping one input bit should flip roughly half the output bits.
  const std::uint64_t a = Murmur3Mix64(0x1234);
  const std::uint64_t b = Murmur3Mix64(0x1235);
  const int differing = __builtin_popcountll(a ^ b);
  EXPECT_GT(differing, 16);
  EXPECT_LT(differing, 48);
}

TEST(HashFunctionTest, Mix32Distributes) {
  std::set<std::uint32_t> buckets;
  for (std::uint32_t i = 0; i < 1024; ++i) {
    buckets.insert(Murmur3Mix32(i) & 2047);
  }
  // Near-uniform: at least ~60% distinct buckets for 1024 keys in 2048.
  EXPECT_GT(buckets.size(), 600u);
}

TEST(HashFunctionTest, PerfectHashIsIdentity) {
  EXPECT_EQ(PerfectHash<std::int64_t>(42), 42u);
  EXPECT_EQ(PerfectHash<std::int32_t>(7), 7u);
  EXPECT_EQ(HashKey<std::int64_t>(1), Murmur3Mix64(1));
  EXPECT_EQ(HashKey<std::int32_t>(1), Murmur3Mix32(1));
}

template <typename TableT>
class TableTypedTest : public ::testing::Test {};

using TableTypes =
    ::testing::Types<PerfectHashTable<std::int64_t, std::int64_t>,
                     LinearProbingHashTable<std::int64_t, std::int64_t>>;
TYPED_TEST_SUITE(TableTypedTest, TableTypes);

TYPED_TEST(TableTypedTest, InsertAndLookup) {
  TypeParam table(256);
  for (std::int64_t key = 0; key < 100; ++key) {
    ASSERT_TRUE(table.Insert(key, key * 10).ok());
  }
  for (std::int64_t key = 0; key < 100; ++key) {
    std::int64_t value = -1;
    ASSERT_TRUE(table.Lookup(key, &value));
    EXPECT_EQ(value, key * 10);
  }
}

TYPED_TEST(TableTypedTest, MissingKeyNotFound) {
  TypeParam table(64);
  ASSERT_TRUE(table.Insert(5, 50).ok());
  std::int64_t value = -1;
  EXPECT_FALSE(table.Lookup(6, &value));
}

TYPED_TEST(TableTypedTest, DuplicateKeyRejected) {
  TypeParam table(64);
  ASSERT_TRUE(table.Insert(5, 50).ok());
  Status dup = table.Insert(5, 51);
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.code(), StatusCode::kAlreadyExists);
  // Original value untouched.
  std::int64_t value = -1;
  ASSERT_TRUE(table.Lookup(5, &value));
  EXPECT_EQ(value, 50);
}

TYPED_TEST(TableTypedTest, ConcurrentInsertsAreSafe) {
  constexpr std::int64_t kKeys = 20000;
  TypeParam table(kKeys);
  exec::ParallelFor(4, [&](std::size_t worker) {
    for (std::int64_t key = static_cast<std::int64_t>(worker); key < kKeys;
         key += 4) {
      ASSERT_TRUE(table.Insert(key, key + 1).ok());
    }
  });
  for (std::int64_t key = 0; key < kKeys; ++key) {
    std::int64_t value = -1;
    ASSERT_TRUE(table.Lookup(key, &value)) << key;
    ASSERT_EQ(value, key + 1);
  }
}

TYPED_TEST(TableTypedTest, ConcurrentDuplicateInsertHasOneWinner) {
  TypeParam table(64);
  std::atomic<int> winners{0};
  exec::ParallelFor(8, [&](std::size_t worker) {
    if (table.Insert(7, static_cast<std::int64_t>(worker)).ok()) {
      winners.fetch_add(1);
    }
  });
  EXPECT_EQ(winners.load(), 1);
  std::int64_t value = -1;
  EXPECT_TRUE(table.Lookup(7, &value));
}

/// Checks ProbeBatch against per-key Lookup on the same probe stream: the
/// interleaved pipeline must be a pure reordering of memory accesses,
/// bit-identical in results.
template <typename Table>
void ExpectBatchMatchesScalar(const Table& table,
                              const std::vector<std::int64_t>& probes) {
  std::vector<std::int64_t> values(probes.size(), -1);
  std::vector<char> found_bytes(probes.size(), 2);
  bool* found = reinterpret_cast<bool*>(found_bytes.data());
  const std::size_t matches =
      table.ProbeBatch(probes.data(), probes.size(), values.data(), found);

  std::size_t scalar_matches = 0;
  for (std::size_t i = 0; i < probes.size(); ++i) {
    std::int64_t value = -1;
    const bool hit = table.Lookup(probes[i], &value);
    ASSERT_EQ(found[i], hit) << "probe " << i << " key " << probes[i];
    if (hit) {
      ASSERT_EQ(values[i], value) << "probe " << i;
      ++scalar_matches;
    }
  }
  EXPECT_EQ(matches, scalar_matches);
}

/// Probe mixes covering the batch pipeline's edge cases: hits, ~90%
/// misses, out-of-domain and negative keys, duplicates, a Zipf-skewed
/// stream, and a tail shorter than the batch width.
std::vector<std::vector<std::int64_t>> ProbeMixes(std::size_t domain) {
  Rng rng(7);
  std::vector<std::vector<std::int64_t>> mixes;

  std::vector<std::int64_t> hits;
  for (std::size_t i = 0; i < 3000; ++i) {
    hits.push_back(static_cast<std::int64_t>(rng.NextBounded(domain)));
  }
  mixes.push_back(std::move(hits));

  std::vector<std::int64_t> miss_heavy;
  for (std::size_t i = 0; i < 3000; ++i) {
    // ~90% of keys land outside the inserted domain.
    miss_heavy.push_back(
        static_cast<std::int64_t>(rng.NextBounded(domain * 10)));
  }
  miss_heavy.push_back(-1);
  miss_heavy.push_back(-1000000);
  mixes.push_back(std::move(miss_heavy));

  data::ZipfGenerator zipf(domain, 1.25);
  std::vector<std::int64_t> skewed;
  for (std::size_t i = 0; i < 3000; ++i) {
    // Ranks are 1-based; rank 1 (the hottest key) maps to key 0.
    skewed.push_back(static_cast<std::int64_t>(zipf.Next(rng) - 1));
  }
  mixes.push_back(std::move(skewed));

  // Duplicates back to back, and a short tail (not a multiple of the
  // batch width).
  mixes.push_back({5, 5, 5, 2, 2, static_cast<std::int64_t>(domain), -3});
  return mixes;
}

TYPED_TEST(TableTypedTest, ProbeBatchMatchesScalarLookup) {
  constexpr std::size_t kDomain = 1024;
  TypeParam table(kDomain);
  // Leave holes: only even keys are inserted, so in-domain misses occur.
  for (std::size_t key = 0; key < kDomain; key += 2) {
    ASSERT_TRUE(table
                    .Insert(static_cast<std::int64_t>(key),
                            static_cast<std::int64_t>(key * 3))
                    .ok());
  }
  for (const auto& probes : ProbeMixes(kDomain)) {
    ExpectBatchMatchesScalar(table, probes);
  }
}

TEST(ProbeBatchTest, EmptyAndSubWidthCounts) {
  PerfectHashTable<std::int64_t, std::int64_t> table(64);
  ASSERT_TRUE(table.Insert(3, 30).ok());
  std::int64_t values[4];
  bool found[4];
  EXPECT_EQ(table.ProbeBatch(nullptr, 0, values, found), 0u);
  const std::int64_t keys[3] = {3, 4, 63};
  EXPECT_EQ(table.ProbeBatch(keys, 3, values, found), 1u);
  EXPECT_TRUE(found[0]);
  EXPECT_FALSE(found[1]);
  EXPECT_FALSE(found[2]);
  EXPECT_EQ(values[0], 30);
}

TEST(ProbeBatchTest, LinearProbingCollisionChains) {
  // A nearly full table maximizes chain lengths past the prefetched
  // first bucket.
  LinearProbingHashTable<std::int64_t, std::int64_t> table(48, 0.75);
  ASSERT_EQ(table.capacity(), 64u);
  std::vector<std::int64_t> keys;
  for (std::int64_t key = 0; key < 48; ++key) {
    keys.push_back(key * 977 + 13);
    ASSERT_TRUE(table.Insert(keys.back(), key).ok());
  }
  std::vector<std::int64_t> probes = keys;
  for (std::int64_t key = 0; key < 48; ++key) {
    probes.push_back(key * 977 + 14);  // Interleave misses.
  }
  ExpectBatchMatchesScalar(table, probes);
}

TEST(PerfectHashTableTest, RejectsOutOfDomainKeys) {
  PerfectHashTable<std::int64_t, std::int64_t> table(16);
  EXPECT_EQ(table.Insert(16, 0).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(table.Insert(-1, 0).code(), StatusCode::kInvalidArgument);
  std::int64_t value;
  EXPECT_FALSE(table.Lookup(16, &value));
  EXPECT_FALSE(table.Lookup(-1, &value));
}

TEST(PerfectHashTableTest, SizeCountsOccupiedSlots) {
  PerfectHashTable<std::int64_t, std::int64_t> table(32);
  EXPECT_EQ(table.Size(), 0u);
  ASSERT_TRUE(table.Insert(3, 1).ok());
  ASSERT_TRUE(table.Insert(9, 2).ok());
  EXPECT_EQ(table.Size(), 2u);
  EXPECT_EQ(table.capacity(), 32u);
  EXPECT_EQ(table.bytes(), 32u * 16u);
}

TEST(PerfectHashTableTest, Int32Variant) {
  PerfectHashTable<std::int32_t, std::int32_t> table(128);
  for (std::int32_t key = 0; key < 128; ++key) {
    ASSERT_TRUE(table.Insert(key, key ^ 21).ok());
  }
  std::int32_t value;
  ASSERT_TRUE(table.Lookup(100, &value));
  EXPECT_EQ(value, 100 ^ 21);
}

TEST(LinearProbingTest, CapacityIsPowerOfTwo) {
  using Table = LinearProbingHashTable<std::int64_t, std::int64_t>;
  EXPECT_EQ(Table::CapacityFor(100, 0.5), 256u);
  EXPECT_EQ(Table::CapacityFor(1000, 0.5), 2048u);
  EXPECT_EQ(Table::CapacityFor(1, 1.0), 2u);
}

TEST(LinearProbingTest, HandlesCollisionsViaProbing) {
  // Capacity 8 with 6 entries forces collisions.
  LinearProbingHashTable<std::int64_t, std::int64_t> table(4, 0.5);
  ASSERT_EQ(table.capacity(), 8u);
  for (std::int64_t key = 0; key < 6; ++key) {
    ASSERT_TRUE(table.Insert(key * 1000 + 3, key).ok());
  }
  for (std::int64_t key = 0; key < 6; ++key) {
    std::int64_t value = -1;
    ASSERT_TRUE(table.Lookup(key * 1000 + 3, &value));
    EXPECT_EQ(value, key);
  }
}

TEST(LinearProbingTest, FullTableReportsOutOfMemory) {
  LinearProbingHashTable<std::int64_t, std::int64_t> table(2, 1.0);
  ASSERT_EQ(table.capacity(), 2u);
  ASSERT_TRUE(table.Insert(1, 1).ok());
  ASSERT_TRUE(table.Insert(2, 2).ok());
  EXPECT_EQ(table.Insert(3, 3).code(), StatusCode::kOutOfMemory);
}

TEST(LinearProbingTest, NonDenseKeys) {
  LinearProbingHashTable<std::int64_t, std::int64_t> table(1000);
  std::vector<std::int64_t> keys = {1ll << 40, 7, 999999937, -0x7fffffff,
                                    123456789012345ll};
  for (std::size_t i = 0; i < keys.size(); ++i) {
    ASSERT_TRUE(table.Insert(keys[i], static_cast<std::int64_t>(i)).ok());
  }
  for (std::size_t i = 0; i < keys.size(); ++i) {
    std::int64_t value = -1;
    ASSERT_TRUE(table.Lookup(keys[i], &value));
    EXPECT_EQ(value, static_cast<std::int64_t>(i));
  }
}

TEST(TableStorageTest, ExternalStorageView) {
  using Storage = TableStorage<std::int64_t, std::int64_t>;
  std::vector<std::byte> backing(Storage::BytesFor(16));
  PerfectHashTable<std::int64_t, std::int64_t> table(backing.data(), 16);
  ASSERT_TRUE(table.Insert(4, 44).ok());
  std::int64_t value = -1;
  ASSERT_TRUE(table.Lookup(4, &value));
  EXPECT_EQ(value, 44);
  EXPECT_EQ(Storage::slot_bytes(), 16u);
}

class HybridTableTest : public ::testing::Test {
 protected:
  hw::Topology topo_ = hw::IbmAc922();
  memory::MemoryManager manager_{&topo_, /*materialize=*/true};
};

TEST_F(HybridTableTest, SmallTableAllGpu) {
  auto table = HybridHashTable<std::int64_t, std::int64_t>::Create(
      &manager_, hw::kGpu0, 1024);
  ASSERT_TRUE(table.ok());
  EXPECT_DOUBLE_EQ(table.value().gpu_fraction(), 1.0);
  EXPECT_TRUE(table.value().materialized());
}

TEST_F(HybridTableTest, ReserveForcesSpill) {
  // Reserve all but 1 MiB of GPU memory: a 2 MiB table must spill half.
  const std::uint64_t gpu_capacity =
      topo_.memory(hw::kGpu0).capacity.u64();
  auto table = HybridHashTable<std::int64_t, std::int64_t>::Create(
      &manager_, hw::kGpu0, (2 << 20) / 16,
      /*gpu_reserve_bytes=*/gpu_capacity - (1 << 20));
  ASSERT_TRUE(table.ok());
  EXPECT_NEAR(table.value().gpu_fraction(), 0.5, 1e-9);
  ASSERT_EQ(table.value().buffer().extents().size(), 2u);
  EXPECT_EQ(table.value().buffer().extents()[1].node, hw::kCpu0);
}

TEST_F(HybridTableTest, FunctionalAcrossTheSplit) {
  const std::uint64_t gpu_capacity =
      topo_.memory(hw::kGpu0).capacity.u64();
  auto table = HybridHashTable<std::int64_t, std::int64_t>::Create(
      &manager_, hw::kGpu0, 4096,
      /*gpu_reserve_bytes=*/gpu_capacity - 16 * 1024);
  ASSERT_TRUE(table.ok());
  ASSERT_LT(table.value().gpu_fraction(), 1.0);
  // The join algorithm is unchanged (Sec. 5.3): inserts and lookups work
  // across the GPU/CPU extent boundary transparently.
  for (std::int64_t key = 0; key < 4096; ++key) {
    ASSERT_TRUE(table.value().table().Insert(key, key * 3).ok());
  }
  for (std::int64_t key = 0; key < 4096; ++key) {
    std::int64_t value = -1;
    ASSERT_TRUE(table.value().table().Lookup(key, &value));
    ASSERT_EQ(value, key * 3);
  }
}

TEST_F(HybridTableTest, ProbeBatchMatchesScalarAcrossSplit) {
  const std::uint64_t gpu_capacity =
      topo_.memory(hw::kGpu0).capacity.u64();
  auto table = HybridHashTable<std::int64_t, std::int64_t>::Create(
      &manager_, hw::kGpu0, 1024,
      /*gpu_reserve_bytes=*/gpu_capacity - 8 * 1024);
  ASSERT_TRUE(table.ok());
  ASSERT_LT(table.value().gpu_fraction(), 1.0);
  for (std::int64_t key = 0; key < 1024; key += 2) {
    ASSERT_TRUE(table.value().table().Insert(key, key * 7).ok());
  }
  for (const auto& probes : ProbeMixes(1024)) {
    ExpectBatchMatchesScalar(table.value(), probes);
  }
}

TEST_F(HybridTableTest, ReleasesCapacityOnDestruction) {
  {
    auto table = HybridHashTable<std::int64_t, std::int64_t>::Create(
        &manager_, hw::kGpu0, 1 << 20);
    ASSERT_TRUE(table.ok());
    EXPECT_GT(manager_.used_bytes(hw::kGpu0), 0u);
  }
  EXPECT_EQ(manager_.used_bytes(hw::kGpu0), 0u);
}

TEST_F(HybridTableTest, MoveTransfersOwnership) {
  auto table = HybridHashTable<std::int64_t, std::int64_t>::Create(
      &manager_, hw::kGpu0, 1024);
  ASSERT_TRUE(table.ok());
  HybridHashTable<std::int64_t, std::int64_t> moved =
      std::move(table).value();
  EXPECT_TRUE(moved.materialized());
  EXPECT_GT(manager_.used_bytes(hw::kGpu0), 0u);
}

}  // namespace
}  // namespace pump::hash
