#include <atomic>
#include <numeric>
#include <vector>

#include "common/happens_before.h"
#include "exec/het_scheduler.h"
#include "exec/morsel.h"
#include "exec/parallel.h"
#include "gtest/gtest.h"

namespace pump::exec {
namespace {

TEST(HappensBeforeTest, EpochCounterCountsOnlyWhenEnabled) {
  hb::EpochCounter counter;
  counter.Bump();
  counter.Bump();
#if PUMP_HB_ASSERTIONS
  EXPECT_EQ(counter.Load(), 2u);
#else
  // Release stand-in: no storage, epochs always read 0.
  EXPECT_EQ(counter.Load(), 0u);
#endif
}

TEST(HappensBeforeTest, DispatcherClaimEpochsMatchSuccessfulClaims) {
  MorselDispatcher dispatcher(1000, 100);
  std::uint64_t successful = 0;
  while (dispatcher.Next()) ++successful;
  EXPECT_EQ(successful, 10u);
#if PUMP_HB_ASSERTIONS
  EXPECT_EQ(dispatcher.hb_claims(), successful);
#else
  EXPECT_EQ(dispatcher.hb_claims(), 0u);
#endif
}

TEST(MorselDispatcherTest, CoversInputExactlyOnce) {
  MorselDispatcher dispatcher(1000, 64);
  std::vector<int> touched(1000, 0);
  while (auto morsel = dispatcher.Next()) {
    for (std::size_t i = morsel->begin; i < morsel->end; ++i) ++touched[i];
  }
  EXPECT_EQ(std::accumulate(touched.begin(), touched.end(), 0), 1000);
  EXPECT_EQ(*std::max_element(touched.begin(), touched.end()), 1);
}

TEST(MorselDispatcherTest, TailMorselIsShort) {
  MorselDispatcher dispatcher(100, 64);
  auto first = dispatcher.Next();
  auto second = dispatcher.Next();
  ASSERT_TRUE(first && second);
  EXPECT_EQ(first->size(), 64u);
  EXPECT_EQ(second->size(), 36u);
  EXPECT_FALSE(dispatcher.Next().has_value());
}

TEST(MorselDispatcherTest, BatchClaimsMultipleMorsels) {
  MorselDispatcher dispatcher(1000, 10);
  auto batch = dispatcher.NextBatch(5);
  ASSERT_TRUE(batch);
  EXPECT_EQ(batch->size(), 50u);
}

TEST(MorselDispatcherTest, EmptyInput) {
  MorselDispatcher dispatcher(0, 10);
  EXPECT_FALSE(dispatcher.Next().has_value());
}

TEST(MorselDispatcherTest, ZeroMorselSizeClamped) {
  MorselDispatcher dispatcher(5, 0);
  auto morsel = dispatcher.Next();
  ASSERT_TRUE(morsel);
  EXPECT_EQ(morsel->size(), 1u);
}

TEST(MorselDispatcherTest, ConcurrentClaimsDoNotOverlap) {
  constexpr std::size_t kTotal = 100000;
  MorselDispatcher dispatcher(kTotal, 97);
  std::vector<std::atomic<int>> touched(kTotal);
  ParallelFor(8, [&](std::size_t) {
    while (auto morsel = dispatcher.Next()) {
      for (std::size_t i = morsel->begin; i < morsel->end; ++i) {
        touched[i].fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  for (std::size_t i = 0; i < kTotal; ++i) {
    ASSERT_EQ(touched[i].load(), 1) << i;
  }
  EXPECT_EQ(dispatcher.dispatched(), kTotal);
}

TEST(ParallelForTest, AllWorkersRun) {
  std::vector<std::atomic<int>> ran(8);
  ParallelFor(8, [&](std::size_t id) { ran[id].fetch_add(1); });
  for (auto& flag : ran) EXPECT_EQ(flag.load(), 1);
}

TEST(ParallelForTest, SingleWorkerRunsInline) {
  std::size_t seen = 99;
  ParallelFor(1, [&](std::size_t id) { seen = id; });
  EXPECT_EQ(seen, 0u);
}

TEST(ParallelForTest, DefaultWorkerCountPositive) {
  EXPECT_GE(DefaultWorkerCount(), 1u);
}

TEST(HetSchedulerTest, GroupsCoverEverythingExactlyOnce) {
  constexpr std::size_t kTotal = 50000;
  std::vector<std::atomic<int>> touched(kTotal);
  auto work = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      touched[i].fetch_add(1, std::memory_order_relaxed);
    }
  };
  // A "CPU" group with 4 single-morsel workers and a "GPU" proxy claiming
  // batches of 8 morsels (Fig. 10).
  std::vector<ProcessorGroup> groups;
  groups.push_back({"CPU", 4, 1, work});
  groups.push_back({"GPU", 1, 8, work});
  const auto stats = RunHeterogeneous(kTotal, 100, std::move(groups));

  for (std::size_t i = 0; i < kTotal; ++i) ASSERT_EQ(touched[i].load(), 1);
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].tuples + stats[1].tuples, kTotal);
}

TEST(HetSchedulerTest, BatchingReducesDispatches) {
  auto noop = [](std::size_t, std::size_t) {};
  std::vector<ProcessorGroup> batched;
  batched.push_back({"GPU", 1, 16, noop});
  const auto batched_stats = RunHeterogeneous(100000, 100, std::move(batched));

  std::vector<ProcessorGroup> single;
  single.push_back({"CPU", 1, 1, noop});
  const auto single_stats = RunHeterogeneous(100000, 100, std::move(single));

  // Morsel batching amortizes dispatch latency (Sec. 6.1): ~16x fewer
  // dispatches for the same work.
  EXPECT_LT(batched_stats[0].dispatches * 10, single_stats[0].dispatches);
}

TEST(HetSchedulerTest, FasterGroupTakesMoreWork) {
  std::atomic<std::size_t> dummy{0};
  auto fast = [&](std::size_t begin, std::size_t end) {
    dummy.fetch_add(end - begin, std::memory_order_relaxed);
  };
  auto slow = [&](std::size_t begin, std::size_t end) {
    // Simulate a slower processor.
    for (std::size_t i = begin; i < end; ++i) {
      dummy.fetch_add(1, std::memory_order_relaxed);
    }
  };
  std::vector<ProcessorGroup> groups;
  groups.push_back({"fast", 2, 1, fast});
  groups.push_back({"slow", 1, 1, slow});
  const auto stats = RunHeterogeneous(200000, 50, std::move(groups));
  // No strict assertion on the split (scheduling is timing-dependent),
  // but both must make progress and the sum must be exact.
  EXPECT_EQ(stats[0].tuples + stats[1].tuples, 200000u);
}

}  // namespace
}  // namespace pump::exec
