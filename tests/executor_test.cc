#include <algorithm>
#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/status.h"
#include "exec/executor.h"
#include "exec/morsel.h"
#include "exec/parallel.h"
#include "exec/work_stealing.h"
#include "gtest/gtest.h"

namespace pump::exec {
namespace {

TEST(ExecutorTest, RunsEverySlotExactlyOnce) {
  Executor executor(3);
  std::vector<std::atomic<int>> ran(16);
  executor.Run(16, [&](std::size_t id) { ran[id].fetch_add(1); });
  for (auto& count : ran) EXPECT_EQ(count.load(), 1);
}

TEST(ExecutorTest, SlotZeroRunsOnCallingThread) {
  Executor executor(2);
  const auto caller = std::this_thread::get_id();
  std::thread::id slot0;
  executor.Run(2, [&](std::size_t id) {
    if (id == 0) slot0 = std::this_thread::get_id();
  });
  EXPECT_EQ(slot0, caller);
}

TEST(ExecutorTest, SingleWorkerRunsInline) {
  Executor executor(2);
  const std::uint64_t dispatches_before = executor.dispatches();
  std::size_t seen = 99;
  executor.Run(1, [&](std::size_t id) { seen = id; });
  EXPECT_EQ(seen, 0u);
  // Degenerate dispatches never engage (or count against) the pool.
  EXPECT_EQ(executor.dispatches(), dispatches_before);
}

TEST(ExecutorTest, MatchesParallelForAcrossPhases) {
  // Fork-join equivalence with ParallelFor, reused across phases the way
  // a join uses one pool for build then probe.
  constexpr std::size_t kN = 10000;
  std::vector<std::uint64_t> data(kN);
  std::iota(data.begin(), data.end(), 0);

  std::atomic<std::uint64_t> reference{0};
  ParallelFor(4, [&](std::size_t w) {
    std::uint64_t local = 0;
    for (std::size_t i = w; i < kN; i += 4) local += data[i];
    reference.fetch_add(local);
  });

  Executor executor(4);
  std::atomic<std::uint64_t> sum{0};
  for (int phase = 0; phase < 3; ++phase) {
    std::atomic<std::uint64_t> phase_sum{0};
    executor.Run(4, [&](std::size_t w) {
      std::uint64_t local = 0;
      for (std::size_t i = w; i < kN; i += 4) local += data[i];
      phase_sum.fetch_add(local);
    });
    sum.store(phase_sum.load());
  }
  EXPECT_EQ(sum.load(), reference.load());
}

TEST(ExecutorTest, StatsAccumulateAcrossDispatches) {
  Executor executor(2);
  for (int i = 0; i < 5; ++i) {
    executor.Run(4, [](std::size_t) {});
  }
  EXPECT_EQ(executor.dispatches(), 5u);
  const std::vector<WorkerStats> stats = executor.Stats();
  ASSERT_EQ(stats.size(), 2u);
  std::uint64_t tasks = 0;
  std::uint64_t unparks = 0;
  for (const WorkerStats& s : stats) {
    tasks += s.tasks_run;
    unparks += s.unparks;
  }
  // The caller runs slot 0 of each dispatch; pool threads run the rest.
  EXPECT_EQ(tasks, 5u * 3u);
  EXPECT_GE(unparks, 5u);  // At least one wake-up per dispatch.
}

TEST(ExecutorTest, MoreSlotsThanThreadsStillCovered) {
  Executor executor(1);
  std::vector<std::atomic<int>> ran(64);
  executor.Run(64, [&](std::size_t id) { ran[id].fetch_add(1); });
  for (auto& count : ran) EXPECT_EQ(count.load(), 1);
  // The single pool thread executed 63 slots: 62 beyond its first.
  const std::vector<WorkerStats> stats = executor.Stats();
  EXPECT_EQ(stats[0].tasks_run, 63u);
  EXPECT_EQ(stats[0].steals, 62u);
}

TEST(ExecutorTest, ExceptionPropagatesAfterBarrier) {
  Executor executor(2);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      executor.Run(8,
                   [&](std::size_t id) {
                     if (id == 3) throw std::runtime_error("slot 3 failed");
                     completed.fetch_add(1);
                   }),
      std::runtime_error);
  // The barrier held: every non-throwing slot still ran.
  EXPECT_EQ(completed.load(), 7);
  // The pool survives and is reusable after an exception.
  std::atomic<int> again{0};
  executor.Run(4, [&](std::size_t) { again.fetch_add(1); });
  EXPECT_EQ(again.load(), 4);
}

TEST(ExecutorTest, CallerSlotExceptionPropagates) {
  Executor executor(2);
  EXPECT_THROW(executor.Run(4,
                            [](std::size_t id) {
                              if (id == 0) {
                                throw std::runtime_error("caller slot");
                              }
                            }),
               std::runtime_error);
}

TEST(ExecutorTest, RunStatusPropagatesFirstError) {
  Executor executor(2);
  const Status status = executor.RunStatus(6, [](std::size_t id) {
    if (id == 2) return Status::InvalidArgument("bad slot");
    return Status::OK();
  });
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);

  EXPECT_TRUE(executor.RunStatus(6, [](std::size_t) {
    return Status::OK();
  }).ok());
}

TEST(ExecutorTest, NestedRunExecutesInline) {
  Executor executor(2);
  std::atomic<int> inner_runs{0};
  executor.Run(2, [&](std::size_t) {
    // A nested dispatch from inside a slot must not deadlock on the pool;
    // it degrades to sequential execution.
    Executor::Default().Run(3, [&](std::size_t) { inner_runs.fetch_add(1); });
  });
  EXPECT_EQ(inner_runs.load(), 6);
}

TEST(ExecutorTest, DefaultIsProcessWideSingleton) {
  EXPECT_EQ(&Executor::Default(), &Executor::Default());
  EXPECT_EQ(Executor::Default().thread_count(), DefaultWorkerCount());
}

TEST(WorkStealingDispatcherTest, CoversInputExactlyOnceSequential) {
  WorkStealingDispatcher dispatcher(10000, 64, 4);
  std::vector<int> touched(10000, 0);
  while (auto morsel = dispatcher.Next(0)) {
    for (std::size_t i = morsel->begin; i < morsel->end; ++i) ++touched[i];
  }
  EXPECT_EQ(std::accumulate(touched.begin(), touched.end(), 0), 10000);
  EXPECT_EQ(*std::max_element(touched.begin(), touched.end()), 1);
}

TEST(WorkStealingDispatcherTest, CoversInputExactlyOnceConcurrent) {
  constexpr std::size_t kTotal = 100000;
  WorkStealingDispatcher dispatcher(kTotal, 97, 8);
  std::vector<std::atomic<int>> touched(kTotal);
  ParallelFor(8, [&](std::size_t w) {
    while (auto morsel = dispatcher.Next(w)) {
      for (std::size_t i = morsel->begin; i < morsel->end; ++i) {
        touched[i].fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  for (std::size_t i = 0; i < kTotal; ++i) {
    ASSERT_EQ(touched[i].load(), 1) << i;
  }
}

TEST(WorkStealingDispatcherTest, TailMorselIsShort) {
  // 2 chunks of 2 morsels x 64; the last morsel covers the 36-tuple tail.
  WorkStealingDispatcher dispatcher(100 + 128, 64, 1, 2);
  std::size_t total = 0;
  std::size_t smallest = 64;
  while (auto morsel = dispatcher.Next(0)) {
    total += morsel->size();
    smallest = std::min(smallest, morsel->size());
  }
  EXPECT_EQ(total, 228u);
  EXPECT_EQ(smallest, 36u);
}

TEST(WorkStealingDispatcherTest, EmptyInput) {
  WorkStealingDispatcher dispatcher(0, 64, 4);
  EXPECT_FALSE(dispatcher.Next(0).has_value());
  EXPECT_FALSE(dispatcher.Next(3).has_value());
}

TEST(WorkStealingDispatcherTest, ZeroMorselAndChunkClamped) {
  WorkStealingDispatcher dispatcher(5, 0, 2, 0);
  std::size_t claims = 0;
  while (dispatcher.Next(0)) ++claims;
  EXPECT_EQ(claims, 5u);  // Morsel size clamps to 1.
}

TEST(WorkStealingDispatcherTest, StealsDrainAnotherWorkersChunk) {
  // Worker 0 claims a chunk (8 morsels) and stops after one morsel;
  // worker 1 exhausts the global cursor, then must steal the remainder
  // of worker 0's chunk to cover the input.
  constexpr std::size_t kTotal = 16 * 10;
  WorkStealingDispatcher dispatcher(kTotal, 10, 2);
  auto first = dispatcher.Next(0);
  ASSERT_TRUE(first.has_value());
  std::size_t covered = first->size();
  while (auto morsel = dispatcher.Next(1)) covered += morsel->size();
  EXPECT_EQ(covered, kTotal);
  EXPECT_GT(dispatcher.steals(1), 0u);
  EXPECT_EQ(dispatcher.total_steals(), dispatcher.steals(1));
}

TEST(WorkStealingDispatcherTest, FewerSharedClaimsThanMorsels) {
  WorkStealingDispatcher dispatcher(64 * 100, 100, 1);
  std::size_t morsels = 0;
  while (dispatcher.Next(0)) ++morsels;
  EXPECT_EQ(morsels, 64u);
#if PUMP_HB_ASSERTIONS
  EXPECT_EQ(dispatcher.hb_claims(), 64u);
  // The point of hierarchical claiming: the shared cursor was touched
  // once per chunk, not once per morsel.
  EXPECT_EQ(dispatcher.hb_chunk_claims(),
            64u / kDefaultChunkMorsels);
#endif
}

TEST(MorselDispatcherTest, CursorSaturatesAtDrain) {
  // Regression test for unbounded cursor growth: spinning workers polling
  // a dry dispatcher must not creep the cursor past the total.
  MorselDispatcher dispatcher(1000, 64);
  while (dispatcher.Next()) {
  }
  EXPECT_EQ(dispatcher.dispatched(), 1000u);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_FALSE(dispatcher.Next().has_value());
  }
  EXPECT_EQ(dispatcher.dispatched(), 1000u);
}

TEST(WorkStealingDispatcherTest, DrainedDispatcherStaysDrained) {
  WorkStealingDispatcher dispatcher(1000, 64, 4);
  std::size_t covered = 0;
  while (auto morsel = dispatcher.Next(0)) covered += morsel->size();
  EXPECT_EQ(covered, 1000u);
  for (int i = 0; i < 1000; ++i) {
    for (std::size_t w = 0; w < 4; ++w) {
      EXPECT_FALSE(dispatcher.Next(w).has_value());
    }
  }
}

}  // namespace
}  // namespace pump::exec
