#include <cstdint>
#include <tuple>

#include "data/generator.h"
#include "gtest/gtest.h"
#include "hash/hybrid_table.h"
#include "hw/topology.h"
#include "join/nopa.h"
#include "join/radix.h"
#include "memory/allocator.h"

namespace pump::join {
namespace {

using data::GenerateInner;
using data::GenerateOuterSelective;
using data::GenerateOuterUniform;
using data::GenerateOuterZipf;
using data::kPayloadOffset;

// Expected aggregate when every outer key in [0, n) matches: payload of
// key k is k + kPayloadOffset.
JoinAggregate BruteForceAggregate(const data::Relation64& inner,
                                  const data::Relation64& outer) {
  JoinAggregate expected;
  std::vector<std::int64_t> payload_of(inner.size());
  for (std::size_t i = 0; i < inner.size(); ++i) {
    payload_of[inner.keys[i]] = inner.payloads[i];
  }
  for (std::int64_t key : outer.keys) {
    if (key >= 0 && key < static_cast<std::int64_t>(inner.size())) {
      ++expected.matches;
      expected.payload_sum +=
          static_cast<std::uint64_t>(payload_of[key]);
    }
  }
  return expected;
}

TEST(NopaJoinTest, AllMatchAggregate) {
  const auto inner = GenerateInner<std::int64_t, std::int64_t>(1 << 12, 1);
  const auto outer =
      GenerateOuterUniform<std::int64_t, std::int64_t>(1 << 15, 1 << 12, 2);
  Result<JoinAggregate> result = RunNopaJoin(inner, outer);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().matches, outer.size());
  EXPECT_EQ(result.value(), BruteForceAggregate(inner, outer));
}

TEST(NopaJoinTest, EmptyOuter) {
  const auto inner = GenerateInner<std::int64_t, std::int64_t>(64, 1);
  data::Relation64 outer;
  Result<JoinAggregate> result = RunNopaJoin(inner, outer);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().matches, 0u);
}

TEST(NopaJoinTest, DuplicateBuildKeyFails) {
  data::Relation64 inner;
  inner.Append(1, 4);
  inner.Append(1, 5);
  inner.Append(0, 1);
  data::Relation64 outer;
  outer.Append(1, 0);
  // Key 1 appears twice within the perfect-hash domain [0, 3).
  Result<JoinAggregate> result = RunNopaJoin(inner, outer);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kAlreadyExists);
}

// Parameterized sweep: (inner size, outer size, workers).
class NopaSweepTest : public ::testing::TestWithParam<
                          std::tuple<std::size_t, std::size_t, std::size_t>> {
};

TEST_P(NopaSweepTest, MatchesBruteForce) {
  const auto [n, m, workers] = GetParam();
  const auto inner = GenerateInner<std::int64_t, std::int64_t>(n, n + 1);
  const auto outer =
      GenerateOuterUniform<std::int64_t, std::int64_t>(m, n, m + 1);
  Result<JoinAggregate> result = RunNopaJoin(inner, outer, workers);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), BruteForceAggregate(inner, outer));
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, NopaSweepTest,
    ::testing::Combine(::testing::Values(1, 31, 1024, 50000),
                       ::testing::Values(0, 100, 65536),
                       ::testing::Values(1, 4)));

TEST(NopaJoinTest, SelectiveJoinMatchesFraction) {
  const std::size_t n = 1 << 12;
  for (double sel : {0.0, 0.3, 1.0}) {
    const auto inner = GenerateInner<std::int64_t, std::int64_t>(n, 5);
    const auto outer = GenerateOuterSelective<std::int64_t, std::int64_t>(
        40000, n, sel, 6);
    Result<JoinAggregate> result = RunNopaJoin(inner, outer);
    ASSERT_TRUE(result.ok());
    EXPECT_NEAR(static_cast<double>(result.value().matches) / 40000.0, sel,
                0.02);
  }
}

TEST(NopaJoinTest, ZipfSkewedProbeStillExact) {
  const std::size_t n = 1 << 14;
  const auto inner = GenerateInner<std::int64_t, std::int64_t>(n, 7);
  const auto outer =
      GenerateOuterZipf<std::int64_t, std::int64_t>(50000, n, 1.5, 8);
  Result<JoinAggregate> result = RunNopaJoin(inner, outer, 4);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), BruteForceAggregate(inner, outer));
  EXPECT_EQ(result.value().matches, 50000u);
}

TEST(NopaJoinTest, Int32Tuples) {
  // Workload C uses 4/4-byte tuples.
  const auto inner = GenerateInner<std::int32_t, std::int32_t>(4096, 9);
  const auto outer =
      GenerateOuterUniform<std::int32_t, std::int32_t>(20000, 4096, 10);
  Result<JoinAggregate> result = RunNopaJoin(inner, outer, 2);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().matches, 20000u);
}

TEST(NopaJoinTest, RunsOnHybridTable) {
  hw::Topology topo = hw::IbmAc922();
  memory::MemoryManager manager(&topo, /*materialize=*/true);
  const std::size_t n = 4096;
  const auto inner = GenerateInner<std::int64_t, std::int64_t>(n, 11);
  const auto outer =
      GenerateOuterUniform<std::int64_t, std::int64_t>(30000, n, 12);

  // Force a GPU/CPU split to exercise the spilled table end to end.
  const std::uint64_t gpu_capacity = topo.memory(hw::kGpu0).capacity.u64();
  auto hybrid = hash::HybridHashTable<std::int64_t, std::int64_t>::Create(
      &manager, hw::kGpu0, n, gpu_capacity - n * 8);
  ASSERT_TRUE(hybrid.ok());
  ASSERT_LT(hybrid.value().gpu_fraction(), 1.0);

  Result<JoinAggregate> result =
      RunNopaJoinOn(&hybrid.value().table(), inner, outer, 4);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), BruteForceAggregate(inner, outer));
}

TEST(RadixPartitionTest, PreservesAllTuples) {
  const auto input = GenerateInner<std::int64_t, std::int64_t>(10000, 13);
  const auto partitioned = RadixPartition(input, 4, 3);
  EXPECT_EQ(partitioned.keys.size(), input.size());
  EXPECT_EQ(partitioned.offsets.front(), 0u);
  EXPECT_EQ(partitioned.offsets.back(), input.size());
  std::uint64_t sum_before = 0, sum_after = 0;
  for (std::int64_t k : input.keys) sum_before += k;
  for (std::int64_t k : partitioned.keys) sum_after += k;
  EXPECT_EQ(sum_before, sum_after);
}

TEST(RadixPartitionTest, TuplesLandInCorrectPartition) {
  const auto input = GenerateInner<std::int64_t, std::int64_t>(5000, 17);
  const int bits = 5;
  const auto partitioned = RadixPartition(input, bits, 2);
  const std::size_t mask = (1u << bits) - 1;
  for (std::size_t p = 0; p < (1u << bits); ++p) {
    for (std::size_t i = partitioned.offsets[p];
         i < partitioned.offsets[p + 1]; ++i) {
      ASSERT_EQ(static_cast<std::size_t>(partitioned.keys[i]) & mask, p);
    }
  }
}

TEST(RadixPartitionTest, PayloadStaysWithKey) {
  const auto input = GenerateInner<std::int64_t, std::int64_t>(2000, 19);
  const auto partitioned = RadixPartition(input, 6, 4);
  for (std::size_t i = 0; i < partitioned.keys.size(); ++i) {
    ASSERT_EQ(partitioned.payloads[i],
              partitioned.keys[i] + kPayloadOffset);
  }
}

// Property: the radix join and the NOPA join agree on every workload.
class RadixVsNopaTest
    : public ::testing::TestWithParam<std::tuple<int, std::size_t>> {};

TEST_P(RadixVsNopaTest, SameAggregate) {
  const auto [bits, workers] = GetParam();
  const std::size_t n = 1 << 13;
  const auto inner = GenerateInner<std::int64_t, std::int64_t>(n, 23);
  const auto outer =
      GenerateOuterUniform<std::int64_t, std::int64_t>(60000, n, 29);

  Result<JoinAggregate> nopa = RunNopaJoin(inner, outer, workers);
  RadixJoinOptions options;
  options.radix_bits = bits;
  options.workers = workers;
  Result<JoinAggregate> radix = RunRadixJoin(inner, outer, options);
  ASSERT_TRUE(nopa.ok());
  ASSERT_TRUE(radix.ok());
  EXPECT_EQ(nopa.value(), radix.value());
}

INSTANTIATE_TEST_SUITE_P(BitsAndWorkers, RadixVsNopaTest,
                         ::testing::Combine(::testing::Values(0, 4, 8, 12),
                                            ::testing::Values(1, 4)));

TEST(RadixJoinTest, RejectsInvalidBits) {
  data::Relation64 r, s;
  RadixJoinOptions options;
  options.radix_bits = 30;
  EXPECT_FALSE(RunRadixJoin(r, s, options).ok());
}

TEST(RadixJoinTest, SelectiveOuter) {
  const std::size_t n = 1 << 12;
  const auto inner = GenerateInner<std::int64_t, std::int64_t>(n, 31);
  const auto outer = GenerateOuterSelective<std::int64_t, std::int64_t>(
      30000, n, 0.5, 37);
  RadixJoinOptions options;
  options.radix_bits = 6;
  options.workers = 2;
  Result<JoinAggregate> radix = RunRadixJoin(inner, outer, options);
  Result<JoinAggregate> nopa = RunNopaJoin(inner, outer);
  ASSERT_TRUE(radix.ok());
  ASSERT_TRUE(nopa.ok());
  EXPECT_EQ(radix.value(), nopa.value());
}

}  // namespace
}  // namespace pump::join
