#include <cstdint>
#include <numeric>
#include <vector>

#include "gtest/gtest.h"
#include "index/btree.h"

namespace pump::index {
namespace {

using Tree = BPlusTree<std::int64_t, std::int64_t>;

Tree MakeDense(std::size_t n, std::int64_t stride = 1) {
  std::vector<std::int64_t> keys(n), values(n);
  for (std::size_t i = 0; i < n; ++i) {
    keys[i] = static_cast<std::int64_t>(i) * stride;
    values[i] = static_cast<std::int64_t>(i) * 10;
  }
  return Tree::BulkLoad(std::move(keys), std::move(values)).value();
}

TEST(BPlusTreeTest, EmptyTree) {
  Tree tree = Tree::BulkLoad({}, {}).value();
  std::int64_t value;
  EXPECT_FALSE(tree.Lookup(0, &value));
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.depth(), 0u);
}

TEST(BPlusTreeTest, SingleNode) {
  Tree tree = MakeDense(10);
  EXPECT_EQ(tree.depth(), 0u);
  std::int64_t value;
  for (std::int64_t key = 0; key < 10; ++key) {
    ASSERT_TRUE(tree.Lookup(key, &value));
    EXPECT_EQ(value, key * 10);
  }
  EXPECT_FALSE(tree.Lookup(10, &value));
  EXPECT_FALSE(tree.Lookup(-1, &value));
}

TEST(BPlusTreeTest, MultiLevelLookups) {
  const std::size_t n = 100'000;
  Tree tree = MakeDense(n);
  EXPECT_GE(tree.depth(), 2u);
  std::int64_t value;
  for (std::int64_t key : {0l, 1l, 15l, 16l, 255l, 4097l, 99'999l}) {
    ASSERT_TRUE(tree.Lookup(key, &value)) << key;
    EXPECT_EQ(value, key * 10);
  }
  EXPECT_FALSE(tree.Lookup(100'000, &value));
}

TEST(BPlusTreeTest, SparseKeysAndMisses) {
  Tree tree = MakeDense(10'000, /*stride=*/7);
  std::int64_t value;
  ASSERT_TRUE(tree.Lookup(7 * 1234, &value));
  EXPECT_EQ(value, 12340);
  // Keys between the stride points miss.
  EXPECT_FALSE(tree.Lookup(7 * 1234 + 3, &value));
  EXPECT_FALSE(tree.Lookup(1, &value));
}

TEST(BPlusTreeTest, ExhaustiveAgainstDomain) {
  const std::size_t n = 3'000;
  Tree tree = MakeDense(n, /*stride=*/3);
  std::int64_t value;
  for (std::int64_t k = 0; k < static_cast<std::int64_t>(3 * n); ++k) {
    const bool expected = (k % 3 == 0);
    ASSERT_EQ(tree.Lookup(k, &value), expected) << k;
    if (expected) {
      ASSERT_EQ(value, (k / 3) * 10);
    }
  }
}

TEST(BPlusTreeTest, BulkLoadValidation) {
  EXPECT_FALSE(Tree::BulkLoad({1, 2}, {1}).ok());         // Length mismatch.
  EXPECT_FALSE(Tree::BulkLoad({1, 1}, {1, 2}).ok());      // Duplicate.
  EXPECT_FALSE(Tree::BulkLoad({2, 1}, {1, 2}).ok());      // Unsorted.
  EXPECT_TRUE(Tree::BulkLoad({1, 2}, {1, 2}).ok());
}

TEST(BPlusTreeTest, RangeSum) {
  Tree tree = MakeDense(1'000);  // values = key * 10.
  std::uint64_t count;
  std::int64_t sum;
  tree.RangeSum(10, 19, &count, &sum);
  EXPECT_EQ(count, 10u);
  EXPECT_EQ(sum, (10 + 19) * 10 * 10 / 2);
  tree.RangeSum(990, 5'000, &count, &sum);
  EXPECT_EQ(count, 10u);
  tree.RangeSum(5'000, 6'000, &count, &sum);
  EXPECT_EQ(count, 0u);
}

TEST(BPlusTreeTest, DepthIsLogarithmic) {
  // 16 keys/node: depth(16^k keys) == k - 1 inner levels... verify the
  // growth pattern rather than exact constants.
  EXPECT_EQ(MakeDense(16).depth(), 0u);
  EXPECT_EQ(MakeDense(17).depth(), 1u);
  EXPECT_EQ(MakeDense(256).depth(), 1u);
  EXPECT_EQ(MakeDense(257).depth(), 2u);
  EXPECT_LE(MakeDense(1'000'000).depth(), 5u);
}

TEST(BPlusTreeTest, InnerLevelsAreTiny) {
  // The hybrid-placement premise: inner separators are a ~1/16-per-level
  // sliver of the index, so they always fit GPU memory/caches.
  Tree tree = MakeDense(1'000'000);
  EXPECT_LT(tree.inner_bytes(), tree.bytes() / 15);
}

}  // namespace
}  // namespace pump::index
