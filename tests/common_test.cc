#include <cmath>
#include <set>
#include <sstream>

#include "common/rng.h"
#include "common/statistics.h"
#include "common/status.h"
#include "common/table_printer.h"
#include "common/units.h"
#include "gtest/gtest.h"

namespace pump {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::InvalidArgument("bad key");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad key");
  EXPECT_EQ(status.ToString(), "InvalidArgument: bad key");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::OutOfMemory("").code(), StatusCode::kOutOfMemory);
  EXPECT_EQ(Status::NotFound("").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::Unsupported("").code(), StatusCode::kUnsupported);
  EXPECT_EQ(Status::Internal("").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::OutOfRange("").code(), StatusCode::kOutOfRange);
}

TEST(StatusTest, StreamInsertion) {
  std::ostringstream os;
  os << Status::NotFound("row");
  EXPECT_EQ(os.str(), "NotFound: row");
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Result<int> DoublePositive(int x) {
  PUMP_ASSIGN_OR_RETURN(int value, ParsePositive(x));
  return value * 2;
}

TEST(ResultTest, HoldsValue) {
  Result<int> result = ParsePositive(21);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 21);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> result = ParsePositive(-1);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(result.value_or(7), 7);
}

TEST(ResultTest, AssignOrReturnMacroPropagates) {
  EXPECT_EQ(DoublePositive(4).value(), 8);
  EXPECT_FALSE(DoublePositive(0).ok());
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> result = std::string("payload");
  std::string moved = std::move(result).value();
  EXPECT_EQ(moved, "payload");
}

TEST(UnitsTest, ByteConstants) {
  EXPECT_EQ(kKiB, 1024u);
  EXPECT_EQ(kMiB, 1024u * 1024u);
  EXPECT_EQ(kGiB, 1024u * 1024u * 1024u);
  EXPECT_EQ(kGB, 1000u * 1000u * 1000u);
}

TEST(UnitsTest, RoundTripBandwidth) {
  EXPECT_DOUBLE_EQ(ToGiBPerSecond(GiBPerSecond(63.0)), 63.0);
  EXPECT_DOUBLE_EQ(GBPerSecond(16.0).bytes_per_second(), 16e9);
}

TEST(UnitsTest, TimeConversions) {
  EXPECT_DOUBLE_EQ(Nanoseconds(434.0).seconds(), 434e-9);
  EXPECT_DOUBLE_EQ(ToNanoseconds(Nanoseconds(282.0)), 282.0);
  EXPECT_DOUBLE_EQ(ToGTuplesPerSecond(3.83e9), 3.83);
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next64(), b.Next64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.Next64() == b.Next64());
  EXPECT_LT(equal, 3);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, BoundedCoversRange) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(3);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, SplitMix64IsStable) {
  // Pinned value guards against accidental algorithm changes that would
  // silently alter every generated workload.
  EXPECT_EQ(SplitMix64(0), 0xe220a8397b1dcdafull);
}

TEST(StatisticsTest, EmptyStats) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.standard_error(), 0.0);
}

TEST(StatisticsTest, MeanAndVariance) {
  RunningStats stats;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.Add(x);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.variance(), 4.571428, 1e-5);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(StatisticsTest, StandardErrorShrinksWithSamples) {
  RunningStats small, large;
  Rng rng(5);
  for (int i = 0; i < 10; ++i) small.Add(rng.NextDouble());
  for (int i = 0; i < 1000; ++i) large.Add(rng.NextDouble());
  EXPECT_GT(small.standard_error(), large.standard_error());
}

TEST(StatisticsTest, ConstantSamplesHaveZeroError) {
  RunningStats stats;
  for (int i = 0; i < 10; ++i) stats.Add(3.83);
  EXPECT_DOUBLE_EQ(stats.standard_error(), 0.0);
  EXPECT_DOUBLE_EQ(stats.relative_standard_error(), 0.0);
}

TEST(StatisticsTest, Median) {
  EXPECT_DOUBLE_EQ(Median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(Median({4.0, 1.0, 2.0, 3.0}), 2.5);
  EXPECT_DOUBLE_EQ(Median({}), 0.0);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"name", "value"});
  table.AddRow({"x", "1"});
  table.AddRow({"longer", "2.50"});
  std::ostringstream os;
  table.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(TablePrinterTest, ShortRowsPadded) {
  TablePrinter table({"a", "b", "c"});
  table.AddRow({"only"});
  std::ostringstream os;
  table.Print(os);
  EXPECT_NE(os.str().find("only"), std::string::npos);
}

TEST(TablePrinterTest, CsvOutput) {
  TablePrinter table({"a", "b"});
  table.AddRow({"plain", "with,comma"});
  table.AddRow({"with\"quote", "x"});
  std::ostringstream os;
  table.PrintCsv(os);
  EXPECT_EQ(os.str(),
            "a,b\nplain,\"with,comma\"\n\"with\"\"quote\",x\n");
}

TEST(TablePrinterTest, PrintAutoHonorsEnvironment) {
  TablePrinter table({"h"});
  table.AddRow({"v"});
  setenv("PUMP_TABLE_FORMAT", "csv", 1);
  std::ostringstream csv;
  table.PrintAuto(csv);
  EXPECT_EQ(csv.str(), "h\nv\n");
  unsetenv("PUMP_TABLE_FORMAT");
  std::ostringstream text;
  table.PrintAuto(text);
  EXPECT_NE(text.str().find("-"), std::string::npos);
}

TEST(TablePrinterTest, FormatDouble) {
  EXPECT_EQ(TablePrinter::FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::FormatDouble(2.0, 0), "2");
}

}  // namespace
}  // namespace pump
