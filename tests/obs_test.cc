// Tests for the observability layer (src/obs/): trace-recorder ring
// semantics (nesting order, wrap without tearing, quiescent snapshots),
// Chrome trace_event export with B/E repair, metrics registry behavior
// under the persistent executor from all workers (the TSan lane runs this
// file), and the residual report round-trip plus its linter.

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "check/model_check.h"
#include "engine/executor.h"
#include "engine/ssb.h"
#include "exec/parallel.h"
#include "fault/fault_injector.h"
#include "obs/metrics.h"
#include "obs/residuals.h"
#include "obs/trace.h"
#include "plan/compiler.h"
#include "plan/executor.h"

namespace pump {
namespace {

using obs::MetricsRegistry;
using obs::TraceRecorder;

/// RAII guard: clears the recorder, enables it for the test body, and
/// leaves it disabled and clear afterwards so tests cannot leak events
/// into each other through the process-wide rings.
class ScopedTracing {
 public:
  ScopedTracing() {
    TraceRecorder::Instance().Clear();
    TraceRecorder::Instance().Enable();
  }
  ~ScopedTracing() {
    TraceRecorder::Instance().Disable();
    TraceRecorder::Instance().Clear();
  }
};

/// The calling thread's retained events (tests record from the main
/// thread unless stated otherwise; worker threads get their own rings).
std::vector<obs::TraceEvent> EventsNamed(
    const std::vector<obs::ThreadTrace>& traces, const char* name) {
  std::vector<obs::TraceEvent> out;
  for (const obs::ThreadTrace& thread : traces) {
    for (const obs::TraceEvent& event : thread.events) {
      if (std::strcmp(event.name, name) == 0) out.push_back(event);
    }
  }
  return out;
}

TEST(TraceRecorderTest, SpanNestingOrderIsRingOrder) {
  ScopedTracing tracing;
  {
    PUMP_TRACE_SPAN(obs::TraceCategory::kTool, "outer", 1.0, 2.0);
    {
      PUMP_TRACE_SPAN(obs::TraceCategory::kTool, "inner");
    }
    PUMP_TRACE_INSTANT(obs::TraceCategory::kTool, "tick", 3.0);
  }
  const std::vector<obs::ThreadTrace> traces =
      TraceRecorder::Instance().Snapshot();
  ASSERT_EQ(traces.size(), 1u);
  const std::vector<obs::TraceEvent>& events = traces[0].events;
  ASSERT_EQ(events.size(), 5u);

  // Ring order is exactly the nesting order: B(outer) B(inner) E i E.
  EXPECT_STREQ(events[0].name, "outer");
  EXPECT_EQ(events[0].phase, 'B');
  EXPECT_TRUE(events[0].has_args);
  EXPECT_DOUBLE_EQ(events[0].arg0, 1.0);
  EXPECT_DOUBLE_EQ(events[0].arg1, 2.0);
  EXPECT_STREQ(events[1].name, "inner");
  EXPECT_EQ(events[1].phase, 'B');
  EXPECT_STREQ(events[2].name, "inner");
  EXPECT_EQ(events[2].phase, 'E');
  EXPECT_STREQ(events[3].name, "tick");
  EXPECT_EQ(events[3].phase, 'i');
  EXPECT_STREQ(events[4].name, "outer");
  EXPECT_EQ(events[4].phase, 'E');

  // Timestamps are monotone within a thread's ring.
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].ts_ns, events[i - 1].ts_ns);
  }
}

TEST(TraceRecorderTest, DisabledRecorderRecordsNothing) {
  TraceRecorder::Instance().Clear();
  ASSERT_FALSE(TraceRecorder::Enabled());
  {
    PUMP_TRACE_SPAN(obs::TraceCategory::kTool, "invisible");
    PUMP_TRACE_INSTANT(obs::TraceCategory::kTool, "also-invisible");
  }
  EXPECT_TRUE(TraceRecorder::Instance().Snapshot().empty());
}

TEST(TraceRecorderTest, SpanActiveAtConstructionRecordsBothEnds) {
  // A span constructed while enabled must emit its 'E' even if the
  // recorder is disabled mid-span (active_ is latched at construction),
  // keeping per-thread rings balanced.
  TraceRecorder::Instance().Clear();
  TraceRecorder::Instance().Enable();
  {
    PUMP_TRACE_SPAN(obs::TraceCategory::kTool, "latched");
    TraceRecorder::Instance().Disable();
  }
  const std::vector<obs::ThreadTrace> traces =
      TraceRecorder::Instance().Snapshot();
  const std::vector<obs::TraceEvent> events = EventsNamed(traces, "latched");
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].phase, 'B');
  EXPECT_EQ(events[1].phase, 'E');
  TraceRecorder::Instance().Clear();
}

TEST(TraceRecorderTest, RingWrapKeepsNewestWindowWithoutTearing) {
  ScopedTracing tracing;
  const std::size_t capacity = TraceRecorder::Instance().ring_capacity();
  const std::size_t extra = 1000;
  const std::size_t total = capacity + extra;
  for (std::size_t i = 0; i < total; ++i) {
    obs::TraceInstant(obs::TraceCategory::kTool, "seq",
                      static_cast<double>(i), static_cast<double>(i) * 2.0);
  }
  const std::vector<obs::ThreadTrace> traces =
      TraceRecorder::Instance().Snapshot();
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_EQ(traces[0].dropped, extra);
  ASSERT_EQ(traces[0].events.size(), capacity);
  // The retained window is the newest `capacity` events, oldest first,
  // and every slot is intact (arg1 consistent with arg0 — no tearing).
  for (std::size_t i = 0; i < capacity; ++i) {
    const obs::TraceEvent& event = traces[0].events[i];
    EXPECT_DOUBLE_EQ(event.arg0, static_cast<double>(extra + i));
    EXPECT_DOUBLE_EQ(event.arg1, event.arg0 * 2.0);
  }
}

TEST(TraceRecorderTest, ClearRewindsWithoutInvalidatingThreadRings) {
  ScopedTracing tracing;
  PUMP_TRACE_INSTANT(obs::TraceCategory::kTool, "before");
  TraceRecorder::Instance().Clear();
  EXPECT_TRUE(TraceRecorder::Instance().Snapshot().empty());
  // The thread's ring pointer survives Clear; recording keeps working.
  PUMP_TRACE_INSTANT(obs::TraceCategory::kTool, "after");
  const std::vector<obs::ThreadTrace> traces =
      TraceRecorder::Instance().Snapshot();
  ASSERT_EQ(traces.size(), 1u);
  ASSERT_EQ(traces[0].events.size(), 1u);
  EXPECT_STREQ(traces[0].events[0].name, "after");
}

TEST(TraceRecorderTest, SpansFromAllExecutorWorkersLandInPerThreadRings) {
  ScopedTracing tracing;
  // Force >= 2 workers: single-core containers report one hardware
  // thread, and this test exists to exercise concurrent recording from
  // the persistent executor's pool threads (TSan lane).
  const std::size_t workers =
      std::max<std::size_t>(2, exec::DefaultWorkerCount());
  const int spans_per_worker = 200;
  exec::ParallelFor(workers, [&](std::size_t w) {
    for (int i = 0; i < spans_per_worker; ++i) {
      PUMP_TRACE_SPAN(obs::TraceCategory::kExec, "worker.span",
                      static_cast<double>(w), static_cast<double>(i));
      PUMP_TRACE_INSTANT(obs::TraceCategory::kExec, "worker.tick",
                         static_cast<double>(w));
    }
  });
  // ParallelFor's barrier guarantees writer quiescence here.
  const std::vector<obs::ThreadTrace> traces =
      TraceRecorder::Instance().Snapshot();
  std::size_t spans = 0;
  for (const obs::ThreadTrace& thread : traces) {
    // Per-thread ring order must be balanced nesting: depth never dips
    // below zero and every B is eventually closed.
    std::int64_t depth = 0;
    for (const obs::TraceEvent& event : thread.events) {
      if (event.phase == 'B') {
        ++depth;
        ++spans;
      } else if (event.phase == 'E') {
        --depth;
        ASSERT_GE(depth, 0) << "unmatched E in a thread ring";
      }
    }
    EXPECT_EQ(depth, 0) << "span left open in a quiescent ring";
  }
  EXPECT_EQ(spans, workers * static_cast<std::size_t>(spans_per_worker));
}

TEST(TraceRecorderTest, ChromeExportBalancesEveryThread) {
  ScopedTracing tracing;
  {
    PUMP_TRACE_SPAN(obs::TraceCategory::kTool, "parent", 1.0, 0.0);
    PUMP_TRACE_SPAN(obs::TraceCategory::kTool, "child");
  }
  // An orphan 'E' (its 'B' lost to a wrap) and a dangling open 'B' (span
  // still open at snapshot): the exporter must drop the former and
  // synthesize a closer for the latter.
  TraceRecorder::Instance().Record(obs::TraceCategory::kTool, "orphan", 'E');
  TraceRecorder::Instance().Record(obs::TraceCategory::kTool, "open", 'B');

  const std::string json = TraceRecorder::Instance().ToChromeJson();
  ASSERT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_EQ(json.find("\"orphan\""), std::string::npos)
      << "orphan 'E' must be dropped from the export";

  // Golden structural check: scan the exported objects in order and
  // verify the B/E sequence is balanced (the Python JSON validation of
  // the same export runs in scripts/check.sh).
  std::vector<char> phases;
  for (std::size_t at = json.find("\"ph\":\""); at != std::string::npos;
       at = json.find("\"ph\":\"", at + 1)) {
    phases.push_back(json[at + 6]);
  }
  ASSERT_EQ(phases.size(), 6u);  // parent B/E, child B/E, open B + closer.
  std::int64_t depth = 0;
  for (char phase : phases) {
    if (phase == 'B') ++depth;
    if (phase == 'E') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0) << "export left a span unbalanced";
}

TEST(MetricsTest, HistogramBucketsByBitWidth) {
  obs::Histogram histogram;
  histogram.Record(0);
  histogram.Record(1);
  histogram.Record(2);
  histogram.Record(3);
  histogram.Record(1024);
  EXPECT_EQ(histogram.count(), 5u);
  EXPECT_EQ(histogram.sum(), 1030u);
  EXPECT_EQ(histogram.bucket(0), 1u);  // zero
  EXPECT_EQ(histogram.bucket(1), 1u);  // [1, 2)
  EXPECT_EQ(histogram.bucket(2), 2u);  // [2, 4)
  EXPECT_EQ(histogram.bucket(11), 1u);  // [1024, 2048)
}

TEST(MetricsTest, CountersAggregateFromAllExecutorWorkers) {
  obs::Counter& counter =
      MetricsRegistry::Instance().GetCounter("test.obs.worker_adds");
  obs::Histogram& histogram =
      MetricsRegistry::Instance().GetHistogram("test.obs.worker_values");
  counter.Reset();
  histogram.Reset();
  const std::size_t workers =
      std::max<std::size_t>(2, exec::DefaultWorkerCount());
  const std::uint64_t adds_per_worker = 10'000;
  exec::ParallelFor(workers, [&](std::size_t) {
    for (std::uint64_t i = 0; i < adds_per_worker; ++i) {
      counter.Add();
      histogram.Record(i & 0xff);
    }
  });
  EXPECT_EQ(counter.value(), workers * adds_per_worker);
  EXPECT_EQ(histogram.count(), workers * adds_per_worker);
}

TEST(MetricsTest, SnapshotContainsCoreFamiliesEvenWhenUntouched) {
  obs::EnsureCoreMetrics();
  const std::string json = MetricsRegistry::Instance().SnapshotJson();
  for (const char* name :
       {"exec.dispatches", "exec.tasks_run", "exec.ws.chunk_claims",
        "exec.het.batches", "fault.checks", "fault.injections",
        "fault.retries", "transfer.chunks", "transfer.bytes",
        "plan.queries", "plan.morsels"}) {
    const std::string needle = std::string("\"") + name + "\"";
    EXPECT_NE(json.find(needle), std::string::npos)
        << "metrics snapshot lost counter family " << name;
  }
  for (const char* name : {"transfer.chunk_bytes", "plan.pipeline_us"}) {
    const std::string needle = std::string("\"") + name + "\"";
    EXPECT_NE(json.find(needle), std::string::npos)
        << "metrics snapshot lost histogram " << name;
  }
}

TEST(MetricsTest, RegistryReferencesAreStableAcrossLookups) {
  obs::Counter& first =
      MetricsRegistry::Instance().GetCounter("test.obs.stable");
  obs::Counter& second =
      MetricsRegistry::Instance().GetCounter("test.obs.stable");
  EXPECT_EQ(&first, &second);
}

TEST(ResidualsTest, RatioEdgeCases) {
  EXPECT_DOUBLE_EQ(obs::ResidualRatio(2.0, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(obs::ResidualRatio(0.0, 1.0), 0.0);   // no prediction
  EXPECT_DOUBLE_EQ(obs::ResidualRatio(-1.0, 1.0), 0.0);  // nonsense input
  EXPECT_DOUBLE_EQ(obs::ResidualRatio(1.0, -1.0), 0.0);
}

TEST(ResidualsTest, ReportRoundTripsThroughJson) {
  obs::ResidualReport report;
  report.query = "ssb-q3";
  report.policy = "cost";
  report.wall_s = 0.125;
  report.rows.push_back({"build[0]", "build", "gpu", "gpu", 0.5, 1.0, 2.0});
  report.rows.push_back({"probe", "probe", "gpu", "cpu", 1.0, 3.0, 3.0});

  const std::string json = obs::ToJson(report);
  Result<obs::ResidualReport> parsed = obs::ParseResidualReport(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().query, "ssb-q3");
  EXPECT_EQ(parsed.value().policy, "cost");
  EXPECT_DOUBLE_EQ(parsed.value().wall_s, 0.125);
  ASSERT_EQ(parsed.value().rows.size(), 2u);
  EXPECT_EQ(parsed.value().rows[0].pipeline, "build[0]");
  EXPECT_EQ(parsed.value().rows[0].pipeline_class, "build");
  EXPECT_DOUBLE_EQ(parsed.value().rows[0].predicted_s, 0.5);
  EXPECT_DOUBLE_EQ(parsed.value().rows[0].ratio, 2.0);
  EXPECT_EQ(parsed.value().rows[1].placement_planned, "gpu");
  EXPECT_EQ(parsed.value().rows[1].placement_used, "cpu");
}

TEST(ResidualsTest, ParserRejectsNonResidualInput) {
  EXPECT_FALSE(obs::ParseResidualReport("{\"counters\":{}}").ok());
  EXPECT_FALSE(
      obs::ParseResidualReport("{\"model_residuals\":[]}").ok());
}

TEST(ResidualsTest, CheckResidualsBandsPerClass) {
  obs::ResidualReport report;
  report.query = "ssb-q1";
  report.rows.push_back({"build[0]", "build", "gpu", "gpu", 1.0, 1.5, 1.5});
  report.rows.push_back({"probe", "probe", "gpu", "gpu", 1.0, 4.0, 4.0});

  check::ResidualBands bands;
  bands["build"] = {0.5, 2.0};
  bands["probe"] = {0.5, 5.0};
  EXPECT_TRUE(check::CheckResiduals(report, bands).ok());

  // Tighten the probe band: only the probe row must violate.
  bands["probe"] = {0.5, 2.0};
  const check::ProfileReport flagged = check::CheckResiduals(report, bands);
  ASSERT_EQ(flagged.violations.size(), 1u);
  EXPECT_EQ(flagged.violations[0].check, "residual.band");
  EXPECT_EQ(flagged.violations[0].subject, "probe");

  // The "" key is the default band for classes without their own.
  check::ResidualBands default_band;
  default_band[""] = {0.5, 2.0};
  EXPECT_EQ(check::CheckResiduals(report, default_band).violations.size(),
            1u);

  // Rows without a prediction are never banded.
  obs::ResidualReport unpredicted;
  unpredicted.query = "q";
  unpredicted.rows.push_back({"probe", "probe", "cpu", "cpu", 0.0, 9.0,
                              0.0});
  EXPECT_TRUE(check::CheckResiduals(unpredicted, default_band).ok());
}

TEST(ResidualsTest, CheckResidualsFlagsInconsistentRows) {
  obs::ResidualReport report;
  report.query = "q";
  // Ratio does not equal measured/predicted.
  report.rows.push_back({"probe", "probe", "cpu", "cpu", 1.0, 2.0, 7.0});
  const check::ProfileReport flagged =
      check::CheckResiduals(report, check::ResidualBands{});
  ASSERT_EQ(flagged.violations.size(), 1u);
  EXPECT_EQ(flagged.violations[0].check, "residual.consistency");

  obs::ResidualReport unknown_class;
  unknown_class.query = "q";
  unknown_class.rows.push_back({"x", "scan", "cpu", "cpu", 0.0, 0.0, 0.0});
  EXPECT_FALSE(
      check::CheckResiduals(unknown_class, check::ResidualBands{}).ok());

  obs::ResidualReport empty;
  empty.query = "q";
  EXPECT_FALSE(check::CheckResiduals(empty, check::ResidualBands{}).ok());
}

// Satellite regression: a mid-query ladder re-placement must not erase
// the per-pipeline outcome rows — the report still says which placement
// was tried and which produced the result.
TEST(PipelineOutcomeTest, RowsSurviveProbeReplacementOnCpu) {
  const engine::SsbDatabase db = engine::SsbDatabase::Generate(4000, 7);
  const std::vector<engine::NamedQuery> suite = engine::SsbSuite(db);
  ASSERT_FALSE(suite.empty());
  const engine::Query& query = suite.back().query;  // ssb-q3: three joins.

  plan::CompileOptions compile_options;
  compile_options.policy = plan::PlacementPolicy::kGpuPreferred;
  Result<plan::PhysicalPlan> physical =
      plan::Compile(query, compile_options);
  ASSERT_TRUE(physical.ok()) << physical.status().ToString();
  const std::size_t builds = physical.value().builds.size();
  ASSERT_GT(builds, 0u);

  // Hard-fail the probe pipeline's GPU stage: a non-retryable fault on
  // the fact-column staging (only the probe stages transfer chunks) makes
  // rung 3 re-place the probe on the CPU, reusing the cached builds.
  fault::FaultInjector injector(/*seed=*/11);
  fault::FaultSpec hard_fault;
  hard_fault.probability = 1.0;
  hard_fault.code = StatusCode::kInternal;
  injector.Arm(fault::kTransferChunk, hard_fault);

  engine::ExecOptions options;
  options.workers = std::max<std::size_t>(2, exec::DefaultWorkerCount());
  options.injector = &injector;
  Result<engine::ExecReport> result =
      plan::ExecutePlan(physical.value(), options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const engine::ExecReport& report = result.value();

  EXPECT_TRUE(report.degraded);
  EXPECT_FALSE(report.used_gpu);
  ASSERT_EQ(report.pipelines.size(), builds + 1);
  for (std::size_t i = 0; i < builds; ++i) {
    EXPECT_EQ(report.pipelines[i].kind, "build");
    EXPECT_EQ(report.pipelines[i].attempts, 1u);
    EXPECT_GT(report.pipelines[i].measured_s, 0.0);
  }
  const engine::PipelineOutcome& probe = report.pipelines.back();
  EXPECT_EQ(probe.kind, "probe");
  EXPECT_NE(probe.placement_planned, "cpu");
  EXPECT_EQ(probe.placement_used, "cpu");
  EXPECT_EQ(probe.attempts, 2u);
  EXPECT_GT(probe.measured_s, 0.0);

  // The clean run reports one attempt on the planned placement.
  engine::ExecOptions clean_options;
  clean_options.workers = options.workers;
  Result<engine::ExecReport> clean =
      plan::ExecutePlan(physical.value(), clean_options);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  ASSERT_EQ(clean.value().pipelines.size(), builds + 1);
  EXPECT_EQ(clean.value().pipelines.back().attempts, 1u);
  EXPECT_EQ(clean.value().pipelines.back().placement_used,
            clean.value().pipelines.back().placement_planned);
  EXPECT_EQ(clean.value().result, report.result);
}

}  // namespace
}  // namespace pump
