// Tests for the observability layer (src/obs/): trace-recorder ring
// semantics (nesting order, wrap without tearing, quiescent snapshots),
// Chrome trace_event export with B/E repair, metrics registry behavior
// under the persistent executor from all workers (the TSan lane runs this
// file), and the residual report round-trip plus its linter.

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "check/model_check.h"
#include "engine/executor.h"
#include "engine/ssb.h"
#include "exec/parallel.h"
#include "fault/fault_injector.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/query_context.h"
#include "obs/residuals.h"
#include "obs/trace.h"
#include "obs/window.h"
#include "plan/compiler.h"
#include "plan/executor.h"

namespace pump {
namespace {

using obs::MetricsRegistry;
using obs::TraceRecorder;

/// RAII guard: clears the recorder, enables it for the test body, and
/// leaves it disabled and clear afterwards so tests cannot leak events
/// into each other through the process-wide rings.
class ScopedTracing {
 public:
  ScopedTracing() {
    TraceRecorder::Instance().Clear();
    TraceRecorder::Instance().Enable();
  }
  ~ScopedTracing() {
    TraceRecorder::Instance().Disable();
    TraceRecorder::Instance().Clear();
  }
};

/// The calling thread's retained events (tests record from the main
/// thread unless stated otherwise; worker threads get their own rings).
std::vector<obs::TraceEvent> EventsNamed(
    const std::vector<obs::ThreadTrace>& traces, const char* name) {
  std::vector<obs::TraceEvent> out;
  for (const obs::ThreadTrace& thread : traces) {
    for (const obs::TraceEvent& event : thread.events) {
      if (std::strcmp(event.name, name) == 0) out.push_back(event);
    }
  }
  return out;
}

TEST(TraceRecorderTest, SpanNestingOrderIsRingOrder) {
  ScopedTracing tracing;
  {
    PUMP_TRACE_SPAN(obs::TraceCategory::kTool, "outer", 1.0, 2.0);
    {
      PUMP_TRACE_SPAN(obs::TraceCategory::kTool, "inner");
    }
    PUMP_TRACE_INSTANT(obs::TraceCategory::kTool, "tick", 3.0);
  }
  const std::vector<obs::ThreadTrace> traces =
      TraceRecorder::Instance().Snapshot();
  ASSERT_EQ(traces.size(), 1u);
  const std::vector<obs::TraceEvent>& events = traces[0].events;
  ASSERT_EQ(events.size(), 5u);

  // Ring order is exactly the nesting order: B(outer) B(inner) E i E.
  EXPECT_STREQ(events[0].name, "outer");
  EXPECT_EQ(events[0].phase, 'B');
  EXPECT_TRUE(events[0].has_args);
  EXPECT_DOUBLE_EQ(events[0].arg0, 1.0);
  EXPECT_DOUBLE_EQ(events[0].arg1, 2.0);
  EXPECT_STREQ(events[1].name, "inner");
  EXPECT_EQ(events[1].phase, 'B');
  EXPECT_STREQ(events[2].name, "inner");
  EXPECT_EQ(events[2].phase, 'E');
  EXPECT_STREQ(events[3].name, "tick");
  EXPECT_EQ(events[3].phase, 'i');
  EXPECT_STREQ(events[4].name, "outer");
  EXPECT_EQ(events[4].phase, 'E');

  // Timestamps are monotone within a thread's ring.
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].ts_ns, events[i - 1].ts_ns);
  }
}

TEST(TraceRecorderTest, DisabledRecorderRecordsNothing) {
  TraceRecorder::Instance().Clear();
  ASSERT_FALSE(TraceRecorder::Enabled());
  {
    PUMP_TRACE_SPAN(obs::TraceCategory::kTool, "invisible");
    PUMP_TRACE_INSTANT(obs::TraceCategory::kTool, "also-invisible");
  }
  EXPECT_TRUE(TraceRecorder::Instance().Snapshot().empty());
}

TEST(TraceRecorderTest, SpanActiveAtConstructionRecordsBothEnds) {
  // A span constructed while enabled must emit its 'E' even if the
  // recorder is disabled mid-span (active_ is latched at construction),
  // keeping per-thread rings balanced.
  TraceRecorder::Instance().Clear();
  TraceRecorder::Instance().Enable();
  {
    PUMP_TRACE_SPAN(obs::TraceCategory::kTool, "latched");
    TraceRecorder::Instance().Disable();
  }
  const std::vector<obs::ThreadTrace> traces =
      TraceRecorder::Instance().Snapshot();
  const std::vector<obs::TraceEvent> events = EventsNamed(traces, "latched");
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].phase, 'B');
  EXPECT_EQ(events[1].phase, 'E');
  TraceRecorder::Instance().Clear();
}

TEST(TraceRecorderTest, RingWrapKeepsNewestWindowWithoutTearing) {
  ScopedTracing tracing;
  const std::size_t capacity = TraceRecorder::Instance().ring_capacity();
  const std::size_t extra = 1000;
  const std::size_t total = capacity + extra;
  for (std::size_t i = 0; i < total; ++i) {
    obs::TraceInstant(obs::TraceCategory::kTool, "seq",
                      static_cast<double>(i), static_cast<double>(i) * 2.0);
  }
  const std::vector<obs::ThreadTrace> traces =
      TraceRecorder::Instance().Snapshot();
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_EQ(traces[0].dropped, extra);
  ASSERT_EQ(traces[0].events.size(), capacity);
  // The retained window is the newest `capacity` events, oldest first,
  // and every slot is intact (arg1 consistent with arg0 — no tearing).
  for (std::size_t i = 0; i < capacity; ++i) {
    const obs::TraceEvent& event = traces[0].events[i];
    EXPECT_DOUBLE_EQ(event.arg0, static_cast<double>(extra + i));
    EXPECT_DOUBLE_EQ(event.arg1, event.arg0 * 2.0);
  }
}

TEST(TraceRecorderTest, ClearRewindsWithoutInvalidatingThreadRings) {
  ScopedTracing tracing;
  PUMP_TRACE_INSTANT(obs::TraceCategory::kTool, "before");
  TraceRecorder::Instance().Clear();
  EXPECT_TRUE(TraceRecorder::Instance().Snapshot().empty());
  // The thread's ring pointer survives Clear; recording keeps working.
  PUMP_TRACE_INSTANT(obs::TraceCategory::kTool, "after");
  const std::vector<obs::ThreadTrace> traces =
      TraceRecorder::Instance().Snapshot();
  ASSERT_EQ(traces.size(), 1u);
  ASSERT_EQ(traces[0].events.size(), 1u);
  EXPECT_STREQ(traces[0].events[0].name, "after");
}

TEST(TraceRecorderTest, SpansFromAllExecutorWorkersLandInPerThreadRings) {
  ScopedTracing tracing;
  // Force >= 2 workers: single-core containers report one hardware
  // thread, and this test exists to exercise concurrent recording from
  // the persistent executor's pool threads (TSan lane).
  const std::size_t workers =
      std::max<std::size_t>(2, exec::DefaultWorkerCount());
  const int spans_per_worker = 200;
  exec::ParallelFor(workers, [&](std::size_t w) {
    for (int i = 0; i < spans_per_worker; ++i) {
      PUMP_TRACE_SPAN(obs::TraceCategory::kExec, "worker.span",
                      static_cast<double>(w), static_cast<double>(i));
      PUMP_TRACE_INSTANT(obs::TraceCategory::kExec, "worker.tick",
                         static_cast<double>(w));
    }
  });
  // ParallelFor's barrier guarantees writer quiescence here.
  const std::vector<obs::ThreadTrace> traces =
      TraceRecorder::Instance().Snapshot();
  std::size_t spans = 0;
  for (const obs::ThreadTrace& thread : traces) {
    // Per-thread ring order must be balanced nesting: depth never dips
    // below zero and every B is eventually closed.
    std::int64_t depth = 0;
    for (const obs::TraceEvent& event : thread.events) {
      if (event.phase == 'B') {
        ++depth;
        ++spans;
      } else if (event.phase == 'E') {
        --depth;
        ASSERT_GE(depth, 0) << "unmatched E in a thread ring";
      }
    }
    EXPECT_EQ(depth, 0) << "span left open in a quiescent ring";
  }
  EXPECT_EQ(spans, workers * static_cast<std::size_t>(spans_per_worker));
}

TEST(TraceRecorderTest, ChromeExportBalancesEveryThread) {
  ScopedTracing tracing;
  {
    PUMP_TRACE_SPAN(obs::TraceCategory::kTool, "parent", 1.0, 0.0);
    PUMP_TRACE_SPAN(obs::TraceCategory::kTool, "child");
  }
  // An orphan 'E' (its 'B' lost to a wrap) and a dangling open 'B' (span
  // still open at snapshot): the exporter must drop the former and
  // synthesize a closer for the latter.
  TraceRecorder::Instance().Record(obs::TraceCategory::kTool, "orphan", 'E');
  TraceRecorder::Instance().Record(obs::TraceCategory::kTool, "open", 'B');

  const std::string json = TraceRecorder::Instance().ToChromeJson();
  ASSERT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_EQ(json.find("\"orphan\""), std::string::npos)
      << "orphan 'E' must be dropped from the export";

  // Golden structural check: scan the exported objects in order and
  // verify the B/E sequence is balanced (the Python JSON validation of
  // the same export runs in scripts/check.sh).
  std::vector<char> phases;
  for (std::size_t at = json.find("\"ph\":\""); at != std::string::npos;
       at = json.find("\"ph\":\"", at + 1)) {
    phases.push_back(json[at + 6]);
  }
  ASSERT_EQ(phases.size(), 6u);  // parent B/E, child B/E, open B + closer.
  std::int64_t depth = 0;
  for (char phase : phases) {
    if (phase == 'B') ++depth;
    if (phase == 'E') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0) << "export left a span unbalanced";
}

TEST(MetricsTest, HistogramBucketsByBitWidth) {
  obs::Histogram histogram;
  histogram.Record(0);
  histogram.Record(1);
  histogram.Record(2);
  histogram.Record(3);
  histogram.Record(1024);
  EXPECT_EQ(histogram.count(), 5u);
  EXPECT_EQ(histogram.sum(), 1030u);
  EXPECT_EQ(histogram.bucket(0), 1u);  // zero
  EXPECT_EQ(histogram.bucket(1), 1u);  // [1, 2)
  EXPECT_EQ(histogram.bucket(2), 2u);  // [2, 4)
  EXPECT_EQ(histogram.bucket(11), 1u);  // [1024, 2048)
}

TEST(MetricsTest, CountersAggregateFromAllExecutorWorkers) {
  obs::Counter& counter =
      MetricsRegistry::Instance().GetCounter("test.obs.worker_adds");
  obs::Histogram& histogram =
      MetricsRegistry::Instance().GetHistogram("test.obs.worker_values");
  counter.Reset();
  histogram.Reset();
  const std::size_t workers =
      std::max<std::size_t>(2, exec::DefaultWorkerCount());
  const std::uint64_t adds_per_worker = 10'000;
  exec::ParallelFor(workers, [&](std::size_t) {
    for (std::uint64_t i = 0; i < adds_per_worker; ++i) {
      counter.Add();
      histogram.Record(i & 0xff);
    }
  });
  EXPECT_EQ(counter.value(), workers * adds_per_worker);
  EXPECT_EQ(histogram.count(), workers * adds_per_worker);
}

TEST(MetricsTest, SnapshotContainsCoreFamiliesEvenWhenUntouched) {
  obs::EnsureCoreMetrics();
  const std::string json = MetricsRegistry::Instance().SnapshotJson();
  for (const char* name :
       {"exec.dispatches", "exec.tasks_run", "exec.ws.chunk_claims",
        "exec.het.batches", "fault.checks", "fault.injections",
        "fault.retries", "transfer.chunks", "transfer.bytes",
        "plan.queries", "plan.morsels"}) {
    const std::string needle = std::string("\"") + name + "\"";
    EXPECT_NE(json.find(needle), std::string::npos)
        << "metrics snapshot lost counter family " << name;
  }
  for (const char* name : {"transfer.chunk_bytes", "plan.pipeline_us"}) {
    const std::string needle = std::string("\"") + name + "\"";
    EXPECT_NE(json.find(needle), std::string::npos)
        << "metrics snapshot lost histogram " << name;
  }
}

TEST(MetricsTest, RegistryReferencesAreStableAcrossLookups) {
  obs::Counter& first =
      MetricsRegistry::Instance().GetCounter("test.obs.stable");
  obs::Counter& second =
      MetricsRegistry::Instance().GetCounter("test.obs.stable");
  EXPECT_EQ(&first, &second);
}

TEST(ResidualsTest, RatioEdgeCases) {
  EXPECT_DOUBLE_EQ(obs::ResidualRatio(2.0, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(obs::ResidualRatio(0.0, 1.0), 0.0);   // no prediction
  EXPECT_DOUBLE_EQ(obs::ResidualRatio(-1.0, 1.0), 0.0);  // nonsense input
  EXPECT_DOUBLE_EQ(obs::ResidualRatio(1.0, -1.0), 0.0);
}

TEST(ResidualsTest, ReportRoundTripsThroughJson) {
  obs::ResidualReport report;
  report.query = "ssb-q3";
  report.policy = "cost";
  report.wall_s = 0.125;
  report.rows.push_back({"build[0]", "build", "gpu", "gpu", 0.5, 1.0, 2.0});
  report.rows.push_back({"probe", "probe", "gpu", "cpu", 1.0, 3.0, 3.0});

  const std::string json = obs::ToJson(report);
  Result<obs::ResidualReport> parsed = obs::ParseResidualReport(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().query, "ssb-q3");
  EXPECT_EQ(parsed.value().policy, "cost");
  EXPECT_DOUBLE_EQ(parsed.value().wall_s, 0.125);
  ASSERT_EQ(parsed.value().rows.size(), 2u);
  EXPECT_EQ(parsed.value().rows[0].pipeline, "build[0]");
  EXPECT_EQ(parsed.value().rows[0].pipeline_class, "build");
  EXPECT_DOUBLE_EQ(parsed.value().rows[0].predicted_s, 0.5);
  EXPECT_DOUBLE_EQ(parsed.value().rows[0].ratio, 2.0);
  EXPECT_EQ(parsed.value().rows[1].placement_planned, "gpu");
  EXPECT_EQ(parsed.value().rows[1].placement_used, "cpu");
}

TEST(ResidualsTest, ParserRejectsNonResidualInput) {
  EXPECT_FALSE(obs::ParseResidualReport("{\"counters\":{}}").ok());
  EXPECT_FALSE(
      obs::ParseResidualReport("{\"model_residuals\":[]}").ok());
}

TEST(ResidualsTest, CheckResidualsBandsPerClass) {
  obs::ResidualReport report;
  report.query = "ssb-q1";
  report.rows.push_back({"build[0]", "build", "gpu", "gpu", 1.0, 1.5, 1.5});
  report.rows.push_back({"probe", "probe", "gpu", "gpu", 1.0, 4.0, 4.0});

  check::ResidualBands bands;
  bands["build"] = {0.5, 2.0};
  bands["probe"] = {0.5, 5.0};
  EXPECT_TRUE(check::CheckResiduals(report, bands).ok());

  // Tighten the probe band: only the probe row must violate.
  bands["probe"] = {0.5, 2.0};
  const check::ProfileReport flagged = check::CheckResiduals(report, bands);
  ASSERT_EQ(flagged.violations.size(), 1u);
  EXPECT_EQ(flagged.violations[0].check, "residual.band");
  EXPECT_EQ(flagged.violations[0].subject, "probe");

  // The "" key is the default band for classes without their own.
  check::ResidualBands default_band;
  default_band[""] = {0.5, 2.0};
  EXPECT_EQ(check::CheckResiduals(report, default_band).violations.size(),
            1u);

  // Rows without a prediction are never banded.
  obs::ResidualReport unpredicted;
  unpredicted.query = "q";
  unpredicted.rows.push_back({"probe", "probe", "cpu", "cpu", 0.0, 9.0,
                              0.0});
  EXPECT_TRUE(check::CheckResiduals(unpredicted, default_band).ok());
}

TEST(ResidualsTest, CheckResidualsFlagsInconsistentRows) {
  obs::ResidualReport report;
  report.query = "q";
  // Ratio does not equal measured/predicted.
  report.rows.push_back({"probe", "probe", "cpu", "cpu", 1.0, 2.0, 7.0});
  const check::ProfileReport flagged =
      check::CheckResiduals(report, check::ResidualBands{});
  ASSERT_EQ(flagged.violations.size(), 1u);
  EXPECT_EQ(flagged.violations[0].check, "residual.consistency");

  obs::ResidualReport unknown_class;
  unknown_class.query = "q";
  unknown_class.rows.push_back({"x", "scan", "cpu", "cpu", 0.0, 0.0, 0.0});
  EXPECT_FALSE(
      check::CheckResiduals(unknown_class, check::ResidualBands{}).ok());

  obs::ResidualReport empty;
  empty.query = "q";
  EXPECT_FALSE(check::CheckResiduals(empty, check::ResidualBands{}).ok());
}

TEST(QueryContextTest, ScopesNestAndRestore) {
  EXPECT_EQ(obs::CurrentQueryContext().query_id, 0u);
  EXPECT_EQ(obs::CurrentQueryContext().shard, -1);
  {
    obs::ScopedQueryContext outer(obs::QueryContext{7, -1});
    EXPECT_EQ(obs::CurrentQueryContext().query_id, 7u);
    {
      obs::ScopedShard shard(3);
      EXPECT_EQ(obs::CurrentQueryContext().query_id, 7u);
      EXPECT_EQ(obs::CurrentQueryContext().shard, 3);
    }
    EXPECT_EQ(obs::CurrentQueryContext().shard, -1);
  }
  EXPECT_EQ(obs::CurrentQueryContext().query_id, 0u);
}

TEST(QueryContextTest, ContextPropagatesToExecutorPoolThreads) {
  ScopedTracing tracing;
  const std::size_t workers =
      std::max<std::size_t>(2, exec::DefaultWorkerCount());
  {
    obs::ScopedQueryContext scope(obs::QueryContext{42, -1});
    exec::ParallelFor(workers, [&](std::size_t w) {
      PUMP_TRACE_INSTANT(obs::TraceCategory::kExec, "ctx.tick",
                         static_cast<double>(w));
    });
  }
  // Every worker's event — pool threads included — carries the query id
  // installed on the dispatching thread; that stamp is the correlation
  // mechanism behind tracedump --query-id.
  const std::vector<obs::TraceEvent> events =
      EventsNamed(TraceRecorder::Instance().Snapshot(), "ctx.tick");
  ASSERT_EQ(events.size(), workers);
  for (const obs::TraceEvent& event : events) {
    EXPECT_EQ(event.query_id, 42u);
    EXPECT_EQ(event.shard, -1);
  }
  // Pool threads restore their idle context after the barrier: a second
  // untagged dispatch records unstamped events.
  exec::ParallelFor(workers, [&](std::size_t w) {
    PUMP_TRACE_INSTANT(obs::TraceCategory::kExec, "idle.tick",
                       static_cast<double>(w));
  });
  for (const obs::TraceEvent& event :
       EventsNamed(TraceRecorder::Instance().Snapshot(), "idle.tick")) {
    EXPECT_EQ(event.query_id, 0u);
  }
}

TEST(TraceExportTest, QueryFilterSelectsOneTimelineAndZeroIsIdentity) {
  ScopedTracing tracing;
  {
    obs::ScopedQueryContext scope(obs::QueryContext{1, -1});
    PUMP_TRACE_SPAN(obs::TraceCategory::kTool, "query.one");
  }
  {
    obs::ScopedQueryContext scope(obs::QueryContext{2, 0});
    PUMP_TRACE_SPAN(obs::TraceCategory::kTool, "query.two");
  }
  PUMP_TRACE_INSTANT(obs::TraceCategory::kTool, "untagged");

  const std::string all = TraceRecorder::Instance().ToChromeJson();
  // filter == 0 is the no-filter path and must stay byte-identical to
  // the legacy export.
  EXPECT_EQ(all, TraceRecorder::Instance().ToChromeJson(0));
  EXPECT_NE(all.find("\"query.one\""), std::string::npos);
  EXPECT_NE(all.find("\"query.two\""), std::string::npos);
  EXPECT_NE(all.find("\"untagged\""), std::string::npos);
  EXPECT_NE(all.find("\"qid\":1"), std::string::npos);
  EXPECT_NE(all.find("\"qid\":2"), std::string::npos);
  EXPECT_NE(all.find("\"shard\":0"), std::string::npos);

  const std::string only_one = TraceRecorder::Instance().ToChromeJson(1);
  EXPECT_NE(only_one.find("\"query.one\""), std::string::npos);
  EXPECT_EQ(only_one.find("\"query.two\""), std::string::npos);
  EXPECT_EQ(only_one.find("\"untagged\""), std::string::npos);
  EXPECT_EQ(only_one.find("\"qid\":2"), std::string::npos);
}

TEST(TraceExportTest, UntaggedExportCarriesNoAttributionFields) {
  ScopedTracing tracing;
  {
    PUMP_TRACE_SPAN(obs::TraceCategory::kTool, "legacy");
  }
  // Solo tools and tests record with no context installed; their export
  // must not grow qid/shard fields (bit-identical legacy format).
  const std::string json = TraceRecorder::Instance().ToChromeJson();
  EXPECT_EQ(json.find("\"qid\""), std::string::npos);
  EXPECT_EQ(json.find("\"shard\""), std::string::npos);
}

TEST(SlidingWindowTest, QuantilesAreBucketUpperBounds) {
  // 10 s window, 5 slots of 2 s; all samples land in epoch 0.
  obs::SlidingWindow window(10ull * 1'000'000'000, 5);
  const std::uint64_t t0 = 1'000'000'000;
  for (int i = 0; i < 90; ++i) window.Record(3, t0);     // bucket 2: [2,4)
  for (int i = 0; i < 10; ++i) window.Record(1000, t0);  // bucket 10
  const obs::SlidingWindow::Aggregate agg = window.Aggregated(t0);
  EXPECT_EQ(agg.count, 100u);
  EXPECT_EQ(agg.sum, 90u * 3 + 10u * 1000);
  // Quantiles report the log2 bucket's upper bound: 2^2-1 for the small
  // mass, 2^10-1 for the tail.
  EXPECT_EQ(agg.p50, 3u);
  EXPECT_EQ(agg.p99, 1023u);
  // Rate is count over the full window span.
  EXPECT_DOUBLE_EQ(agg.rate_per_s, 10.0);
}

TEST(SlidingWindowTest, ZeroValuesLandInBucketZero) {
  obs::SlidingWindow window(10ull * 1'000'000'000, 5);
  const std::uint64_t t0 = 1'000'000'000;
  for (int i = 0; i < 8; ++i) window.Record(0, t0);
  const obs::SlidingWindow::Aggregate agg = window.Aggregated(t0);
  EXPECT_EQ(agg.count, 8u);
  EXPECT_EQ(agg.sum, 0u);
  EXPECT_EQ(agg.p50, 0u);
  EXPECT_EQ(agg.p99, 0u);
}

TEST(SlidingWindowTest, SamplesExpireOnceTheWindowRollsPast) {
  obs::SlidingWindow window(10ull * 1'000'000'000, 5);
  const std::uint64_t second = 1'000'000'000;
  window.Record(100, 1 * second);
  window.Record(100, 3 * second);
  EXPECT_EQ(window.Aggregated(3 * second).count, 2u);
  // 9 s later both samples are still inside the 10 s window...
  EXPECT_EQ(window.Aggregated(9 * second).count, 2u);
  // ...but at t0+11 s the first slot's epoch has rolled out, and by 13 s
  // the second is gone too (lazy expiry, no Record needed in between).
  EXPECT_EQ(window.Aggregated(11 * second).count, 1u);
  EXPECT_EQ(window.Aggregated(13 * second).count, 0u);
  EXPECT_EQ(window.Aggregated(13 * second).p99, 0u);
}

TEST(SlidingWindowTest, SlotReclaimDropsOnlyTheRolledEpoch) {
  // Slot reuse: epoch 0 and epoch 5 share slots_[0]; recording in epoch
  // 5 reclaims the slot and must not disturb epochs 1..4.
  obs::SlidingWindow window(10ull * 1'000'000'000, 5);
  const std::uint64_t slot = 2'000'000'000;  // slot_ns
  for (std::uint64_t e = 0; e < 5; ++e) window.Record(7, e * slot);
  EXPECT_EQ(window.Aggregated(4 * slot).count, 5u);
  window.Record(7, 5 * slot);
  const obs::SlidingWindow::Aggregate agg = window.Aggregated(5 * slot);
  EXPECT_EQ(agg.count, 5u) << "epoch 0 evicted, epochs 1..5 retained";
}

TEST(SlidingWindowTest, ConcurrentRecordingFromExecutorWorkers) {
  // The TSan lane runs this file: hammer one window from every pool
  // thread of the persistent executor, exactly like concurrent query
  // resolutions hammer the engine's latency window.
  obs::SlidingWindow window;
  const std::size_t workers =
      std::max<std::size_t>(2, exec::DefaultWorkerCount());
  const std::uint64_t per_worker = 5'000;
  exec::ParallelFor(workers, [&](std::size_t w) {
    for (std::uint64_t i = 0; i < per_worker; ++i) {
      window.Record((w + 1) * 10);
    }
  });
  const obs::SlidingWindow::Aggregate agg = window.Aggregated();
  EXPECT_EQ(agg.count, workers * per_worker);
  EXPECT_GT(agg.p99, 0u);
}

obs::Incident MakeIncident(std::uint64_t id, const char* kind) {
  obs::Incident incident;
  incident.query_id = id;
  incident.kind = kind;
  incident.status = "INTERNAL: rung 4 exhausted";
  incident.tag = "ssb-q1";
  incident.plan_json = "{\"pipelines\":[]}";
  incident.report_json = "{\"pipelines\":[]}";
  incident.metrics_delta.emplace_back("fault.injections", 3);
  incident.captured_ts_ns = id * 100;
  return incident;
}

TEST(FlightRecorderTest, RingBoundEvictsOldestAndStatsKeepTotals) {
  obs::FlightRecorder recorder(/*capacity=*/2, /*trace_tail_events=*/8);
  recorder.Capture(MakeIncident(1, "fault_ladder_exhausted"));
  recorder.Capture(MakeIncident(2, "cancelled"));
  recorder.Capture(MakeIncident(3, "fault_ladder_exhausted"));

  const std::vector<obs::Incident> retained = recorder.Incidents();
  ASSERT_EQ(retained.size(), 2u);
  EXPECT_EQ(retained[0].query_id, 2u) << "oldest first, 1 evicted";
  EXPECT_EQ(retained[1].query_id, 3u);

  const obs::FlightRecorder::Stats stats = recorder.stats();
  EXPECT_EQ(stats.captured, 3u);
  EXPECT_EQ(stats.evicted, 1u);
  EXPECT_EQ(stats.captured_by_kind.at("fault_ladder_exhausted"), 2u);
  EXPECT_EQ(stats.captured_by_kind.at("cancelled"), 1u);
}

TEST(FlightRecorderTest, CaptureFillsTraceTailForItsQueryOnly) {
  ScopedTracing tracing;
  {
    obs::ScopedQueryContext scope(obs::QueryContext{5, -1});
    for (int i = 0; i < 10; ++i) {
      PUMP_TRACE_INSTANT(obs::TraceCategory::kEngine, "mine",
                         static_cast<double>(i));
    }
  }
  {
    obs::ScopedQueryContext scope(obs::QueryContext{6, -1});
    PUMP_TRACE_INSTANT(obs::TraceCategory::kEngine, "sibling");
  }

  obs::FlightRecorder recorder(/*capacity=*/4, /*trace_tail_events=*/4);
  recorder.Capture(MakeIncident(5, "deadline_expired"));
  const std::vector<obs::Incident> retained = recorder.Incidents();
  ASSERT_EQ(retained.size(), 1u);
  const obs::Incident& incident = retained[0];
  // The tail is self-gathered from the process rings, filtered to the
  // incident's query, bounded to the newest trace_tail_events.
  ASSERT_EQ(incident.trace_tail.size(), 4u);
  ASSERT_EQ(incident.trace_tail_tids.size(), 4u);
  for (const obs::TraceEvent& event : incident.trace_tail) {
    EXPECT_EQ(event.query_id, 5u);
    EXPECT_STREQ(event.name, "mine");
  }
  // Newest window: arg0 carries the loop index, so 6..9 survive.
  EXPECT_DOUBLE_EQ(incident.trace_tail.front().arg0, 6.0);
  EXPECT_DOUBLE_EQ(incident.trace_tail.back().arg0, 9.0);

  // JSON artifact: parseable shape with every section present (the
  // Python-side parse of the same dump runs in scripts/check.sh).
  const std::string json = obs::FlightRecorder::IncidentJson(incident);
  for (const char* key :
       {"\"query_id\":5", "\"kind\":\"deadline_expired\"", "\"status\":",
        "\"tag\":", "\"plan\":", "\"report\":", "\"metrics_delta\":",
        "\"trace_tail\":", "\"latency_us\":", "\"queue_wait_us\":"}) {
    EXPECT_NE(json.find(key), std::string::npos)
        << "incident artifact lost " << key;
  }
  EXPECT_NE(recorder.ToJson().find("\"incidents\":["), std::string::npos);
}

TEST(FlightRecorderTest, CaptureWithTracingOffLeavesTailEmpty) {
  TraceRecorder::Instance().Clear();
  ASSERT_FALSE(TraceRecorder::Enabled());
  obs::FlightRecorder recorder(/*capacity=*/2, /*trace_tail_events=*/8);
  recorder.Capture(MakeIncident(9, "cancelled"));
  const std::vector<obs::Incident> retained = recorder.Incidents();
  ASSERT_EQ(retained.size(), 1u);
  EXPECT_TRUE(retained[0].trace_tail.empty());
  // The artifact is still self-contained: plan, report and deltas are
  // caller-supplied and survive without a trace.
  EXPECT_FALSE(retained[0].plan_json.empty());
  EXPECT_FALSE(retained[0].report_json.empty());
}

// Satellite regression: a mid-query ladder re-placement must not erase
// the per-pipeline outcome rows — the report still says which placement
// was tried and which produced the result.
TEST(PipelineOutcomeTest, RowsSurviveProbeReplacementOnCpu) {
  const engine::SsbDatabase db = engine::SsbDatabase::Generate(4000, 7);
  const std::vector<engine::NamedQuery> suite = engine::SsbSuite(db);
  ASSERT_FALSE(suite.empty());
  const engine::Query& query = suite.back().query;  // ssb-q3: three joins.

  plan::CompileOptions compile_options;
  compile_options.policy = plan::PlacementPolicy::kGpuPreferred;
  Result<plan::PhysicalPlan> physical =
      plan::Compile(query, compile_options);
  ASSERT_TRUE(physical.ok()) << physical.status().ToString();
  const std::size_t builds = physical.value().builds.size();
  ASSERT_GT(builds, 0u);

  // Hard-fail the probe pipeline's GPU stage: a non-retryable fault on
  // the fact-column staging (only the probe stages transfer chunks) makes
  // rung 3 re-place the probe on the CPU, reusing the cached builds.
  fault::FaultInjector injector(/*seed=*/11);
  fault::FaultSpec hard_fault;
  hard_fault.probability = 1.0;
  hard_fault.code = StatusCode::kInternal;
  injector.Arm(fault::kTransferChunk, hard_fault);

  engine::ExecOptions options;
  options.workers = std::max<std::size_t>(2, exec::DefaultWorkerCount());
  options.injector = &injector;
  Result<engine::ExecReport> result =
      plan::ExecutePlan(physical.value(), options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const engine::ExecReport& report = result.value();

  EXPECT_TRUE(report.degraded);
  EXPECT_FALSE(report.used_gpu);
  ASSERT_EQ(report.pipelines.size(), builds + 1);
  for (std::size_t i = 0; i < builds; ++i) {
    EXPECT_EQ(report.pipelines[i].kind, "build");
    EXPECT_EQ(report.pipelines[i].attempts, 1u);
    EXPECT_GT(report.pipelines[i].measured_s, 0.0);
  }
  const engine::PipelineOutcome& probe = report.pipelines.back();
  EXPECT_EQ(probe.kind, "probe");
  EXPECT_NE(probe.placement_planned, "cpu");
  EXPECT_EQ(probe.placement_used, "cpu");
  EXPECT_EQ(probe.attempts, 2u);
  EXPECT_GT(probe.measured_s, 0.0);

  // The clean run reports one attempt on the planned placement.
  engine::ExecOptions clean_options;
  clean_options.workers = options.workers;
  Result<engine::ExecReport> clean =
      plan::ExecutePlan(physical.value(), clean_options);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  ASSERT_EQ(clean.value().pipelines.size(), builds + 1);
  EXPECT_EQ(clean.value().pipelines.back().attempts, 1u);
  EXPECT_EQ(clean.value().pipelines.back().placement_used,
            clean.value().pipelines.back().placement_planned);
  EXPECT_EQ(clean.value().result, report.result);
}

}  // namespace
}  // namespace pump
