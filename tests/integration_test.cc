// Cross-module integration tests: full pipelines that combine the
// scheduler, hash tables, transfer executor, Unified Memory bookkeeping,
// and operators the way the benchmark binaries and a real engine would.

#include <atomic>
#include <cstdint>
#include <cstring>

#include "data/generator.h"
#include "data/tpch.h"
#include "exec/het_scheduler.h"
#include "gtest/gtest.h"
#include "hash/hybrid_table.h"
#include "hw/system_profile.h"
#include "join/nopa.h"
#include "join/radix.h"
#include "memory/allocator.h"
#include "memory/unified.h"
#include "ops/aggregate.h"
#include "ops/q6.h"
#include "ops/scan.h"
#include "transfer/executor.h"

namespace pump {
namespace {

using data::GenerateInner;
using data::GenerateOuterUniform;

TEST(IntegrationTest, HeterogeneousSharedTableJoin) {
  // The functional analogue of the Het strategy (Fig. 9a): a "CPU" group
  // and a "GPU" group build one shared hash table concurrently through
  // the morsel dispatcher, then probe it heterogeneously.
  const std::size_t n = 1 << 16;
  const auto inner = GenerateInner<std::int64_t, std::int64_t>(n, 3);
  const auto outer =
      GenerateOuterUniform<std::int64_t, std::int64_t>(1 << 19, n, 4);

  hash::PerfectHashTable<std::int64_t, std::int64_t> table(n);

  // Build phase across both processor groups.
  std::atomic<int> build_errors{0};
  auto build = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      if (!table.Insert(inner.keys[i], inner.payloads[i]).ok()) {
        build_errors.fetch_add(1, std::memory_order_relaxed);
      }
    }
  };
  std::vector<exec::ProcessorGroup> build_groups;
  build_groups.push_back({"CPU", 2, 1, build});
  build_groups.push_back({"GPU", 1, 8, build});
  const auto build_stats =
      exec::RunHeterogeneous(inner.size(), 4096, std::move(build_groups));
  ASSERT_EQ(build_errors.load(), 0);
  ASSERT_EQ(build_stats[0].tuples + build_stats[1].tuples, inner.size());
  ASSERT_EQ(table.Size(), n);

  // Probe phase across both processor groups.
  std::atomic<std::uint64_t> matches{0};
  std::atomic<std::uint64_t> sum{0};
  auto probe = [&](std::size_t begin, std::size_t end) {
    std::uint64_t local_matches = 0, local_sum = 0;
    for (std::size_t i = begin; i < end; ++i) {
      std::int64_t value;
      if (table.Lookup(outer.keys[i], &value)) {
        ++local_matches;
        local_sum += static_cast<std::uint64_t>(value);
      }
    }
    matches.fetch_add(local_matches, std::memory_order_relaxed);
    sum.fetch_add(local_sum, std::memory_order_relaxed);
  };
  std::vector<exec::ProcessorGroup> probe_groups;
  probe_groups.push_back({"CPU", 2, 1, probe});
  probe_groups.push_back({"GPU", 1, 8, probe});
  (void)exec::RunHeterogeneous(outer.size(), 4096, std::move(probe_groups));

  // Cross-check against the single-threaded reference join.
  Result<join::JoinAggregate> reference = join::RunNopaJoin(inner, outer);
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(matches.load(), reference.value().matches);
  EXPECT_EQ(sum.load(), reference.value().payload_sum);
}

TEST(IntegrationTest, GpuHetLocalCopies) {
  // GPU+Het (Fig. 9b): build once, copy the table, probe private copies;
  // the sum of the two probes must equal the shared-table result.
  const std::size_t n = 1 << 14;
  const auto inner = GenerateInner<std::int64_t, std::int64_t>(n, 5);
  const auto outer =
      GenerateOuterUniform<std::int64_t, std::int64_t>(1 << 17, n, 6);

  // Step 1: build on the "GPU".
  hash::PerfectHashTable<std::int64_t, std::int64_t> gpu_table(n);
  ASSERT_TRUE(join::BuildPhase(&gpu_table, inner, 1).ok());

  // Step 2: broadcast — functionally, rebuild a CPU-local copy from R
  // (the executor copies bytes; tables are semantically identical).
  hash::PerfectHashTable<std::int64_t, std::int64_t> cpu_table(n);
  ASSERT_TRUE(join::BuildPhase(&cpu_table, inner, 1).ok());

  // Step 3: probe disjoint halves on each processor's local copy.
  data::Relation64 first_half, second_half;
  for (std::size_t i = 0; i < outer.size(); ++i) {
    auto& target = i < outer.size() / 2 ? first_half : second_half;
    target.Append(outer.keys[i], outer.payloads[i]);
  }
  const join::JoinAggregate gpu_part =
      join::ProbePhase(gpu_table, first_half, 1);
  const join::JoinAggregate cpu_part =
      join::ProbePhase(cpu_table, second_half, 1);

  Result<join::JoinAggregate> reference = join::RunNopaJoin(inner, outer);
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(gpu_part.matches + cpu_part.matches,
            reference.value().matches);
  EXPECT_EQ(gpu_part.payload_sum + cpu_part.payload_sum,
            reference.value().payload_sum);
}

TEST(IntegrationTest, TransferThenJoin) {
  // Pipeline a push-based transfer into a join build, the way the
  // Pageable/Pinned Copy joins work (Sec. 5.1): each landed chunk is
  // immediately consumed by inserts.
  const std::size_t n = 1 << 14;
  const auto inner = GenerateInner<std::int64_t, std::int64_t>(n, 7);
  const auto outer =
      GenerateOuterUniform<std::int64_t, std::int64_t>(1 << 16, n, 8);

  // Serialize R's columns into a source buffer (keys then payloads).
  const std::uint64_t bytes = n * 16;
  memory::Buffer src(bytes, memory::MemoryKind::kPinned,
                     {memory::Extent{hw::kCpu0, bytes}});
  std::memcpy(src.data(), inner.keys.data(), n * 8);
  std::memcpy(src.data() + n * 8, inner.payloads.data(), n * 8);
  memory::Buffer dst(bytes, memory::MemoryKind::kDevice,
                     {memory::Extent{hw::kGpu0, bytes}});

  hash::PerfectHashTable<std::int64_t, std::int64_t> table(n);
  std::uint64_t consumed_chunks = 0;
  auto stats = transfer::ExecuteTransfer(
      transfer::TransferMethod::kPinnedCopy, src, &dst, hw::kGpu0,
      /*chunk_bytes=*/n * 2, /*os_page_bytes=*/4096, nullptr,
      [&](std::uint64_t, std::uint64_t) { ++consumed_chunks; });
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(consumed_chunks, 8u);

  // Build from the *destination* buffer: the data actually moved.
  const auto* keys = reinterpret_cast<const std::int64_t*>(dst.data());
  const auto* payloads =
      reinterpret_cast<const std::int64_t*>(dst.data() + n * 8);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(table.Insert(keys[i], payloads[i]).ok());
  }
  const join::JoinAggregate probe = join::ProbePhase(table, outer, 2);
  Result<join::JoinAggregate> reference = join::RunNopaJoin(inner, outer);
  EXPECT_EQ(probe, reference.value());
}

TEST(IntegrationTest, UnifiedMemoryJoinResidency) {
  // UM Migration join: touching S pages during the probe migrates them
  // to the GPU node; afterwards all pages are GPU-resident.
  const std::size_t n = 1 << 12;
  const auto inner = GenerateInner<std::int64_t, std::int64_t>(n, 9);
  const std::uint64_t s_bytes = (1 << 15) * 8;
  memory::UnifiedRegion region(s_bytes, memory::kIbmPageBytes, hw::kCpu0);
  const auto outer =
      GenerateOuterUniform<std::int64_t, std::int64_t>(1 << 15, n, 10);

  hash::PerfectHashTable<std::int64_t, std::int64_t> table(n);
  ASSERT_TRUE(join::BuildPhase(&table, inner, 1).ok());

  std::uint64_t matches = 0;
  for (std::size_t i = 0; i < outer.size(); ++i) {
    (void)region.Touch(i * 8, hw::kGpu0);  // Demand-page the S column.
    std::int64_t value;
    matches += table.Lookup(outer.keys[i], &value);
  }
  EXPECT_EQ(matches, outer.size());
  EXPECT_EQ(region.PagesOn(hw::kGpu0), region.page_count());
  EXPECT_EQ(region.fault_count(), region.page_count());
}

TEST(IntegrationTest, ScanJoinAggregatePipeline) {
  // A small "query": filter S, join the survivors against R, group the
  // matches by key range — scan, join, and aggregation working together.
  const std::size_t n = 1 << 12;
  const auto inner = GenerateInner<std::int64_t, std::int64_t>(n, 11);
  const auto outer =
      GenerateOuterUniform<std::int64_t, std::int64_t>(1 << 16, n, 12);

  // sigma(key < n/2)(S)
  const ops::SelectionVector sel = ops::ScanColumn(
      outer.keys, ops::CompareOp::kLt, static_cast<std::int64_t>(n / 2));

  hash::PerfectHashTable<std::int64_t, std::int64_t> table(n);
  ASSERT_TRUE(join::BuildPhase(&table, inner, 1).ok());

  ops::DenseGroupBy group_by(4);  // Group by key quartile.
  std::uint64_t joined = 0;
  for (std::uint32_t row : sel) {
    std::int64_t payload;
    if (table.Lookup(outer.keys[row], &payload)) {
      ++joined;
      const std::int64_t quartile = outer.keys[row] / (n / 4);
      ASSERT_TRUE(group_by.Accumulate(quartile, payload).ok());
    }
  }
  EXPECT_EQ(joined, sel.size());  // Every filtered tuple matches.
  const auto groups = group_by.Finalize();
  ASSERT_EQ(groups.size(), 2u);  // Keys < n/2 span quartiles 0 and 1.
  EXPECT_EQ(groups[0].count + groups[1].count, joined);
}

TEST(IntegrationTest, HybridTableUnderRadixAndNopa) {
  // The hybrid table is a drop-in replacement (Sec. 5.3): NOPA over a
  // spilled hybrid table must agree with the radix join over plain
  // memory.
  hw::Topology topo = hw::IbmAc922();
  memory::MemoryManager manager(&topo, /*materialize=*/true);
  const std::size_t n = 1 << 13;
  const auto inner = GenerateInner<std::int64_t, std::int64_t>(n, 13);
  const auto outer =
      GenerateOuterUniform<std::int64_t, std::int64_t>(1 << 16, n, 14);

  const std::uint64_t gpu_capacity = topo.memory(hw::kGpu0).capacity.u64();
  auto hybrid = hash::HybridHashTable<std::int64_t, std::int64_t>::Create(
      &manager, hw::kGpu0, n, gpu_capacity - n * 4);
  ASSERT_TRUE(hybrid.ok());
  ASSERT_LT(hybrid.value().gpu_fraction(), 1.0);

  Result<join::JoinAggregate> nopa =
      join::RunNopaJoinOn(&hybrid.value().table(), inner, outer, 3);
  join::RadixJoinOptions options;
  options.radix_bits = 6;
  options.workers = 2;
  Result<join::JoinAggregate> radix =
      join::RunRadixJoin(inner, outer, options);
  ASSERT_TRUE(nopa.ok());
  ASSERT_TRUE(radix.ok());
  EXPECT_EQ(nopa.value(), radix.value());
}

}  // namespace
}  // namespace pump
