#include <cstdint>

#include "data/star.h"
#include "gtest/gtest.h"
#include "hw/system_profile.h"
#include "join/star.h"
#include "join/star_model.h"

namespace pump::join {
namespace {

using data::GenerateStarSchema;
using data::StarSchema;

StarAggregate BruteForce(const StarSchema& schema) {
  StarAggregate expected;
  for (std::size_t i = 0; i < schema.fact_rows(); ++i) {
    std::uint64_t payload_sum = 0;
    bool all_match = true;
    for (std::size_t d = 0; d < schema.dimension_count(); ++d) {
      const std::int64_t key = schema.fact_keys[d][i];
      if (key < 0 ||
          key >= static_cast<std::int64_t>(schema.dimensions[d].size())) {
        all_match = false;
        break;
      }
      // Payload of a dense dimension is key + kPayloadOffset.
      payload_sum +=
          static_cast<std::uint64_t>(key + data::kPayloadOffset);
    }
    if (all_match) {
      ++expected.matches;
      expected.checksum +=
          static_cast<std::uint64_t>(schema.measures[i]) + payload_sum;
    }
  }
  return expected;
}

TEST(StarSchemaTest, GeneratorShape) {
  const StarSchema schema = GenerateStarSchema({100, 200, 50}, 5000, 1);
  EXPECT_EQ(schema.dimension_count(), 3u);
  EXPECT_EQ(schema.fact_rows(), 5000u);
  EXPECT_EQ(schema.dimensions[1].size(), 200u);
  for (std::size_t d = 0; d < 3; ++d) {
    ASSERT_EQ(schema.fact_keys[d].size(), 5000u);
    for (std::int64_t key : schema.fact_keys[d]) {
      ASSERT_GE(key, 0);
      ASSERT_LT(key,
                static_cast<std::int64_t>(schema.dimensions[d].size()));
    }
  }
}

TEST(StarJoinTest, AllRowsMatch) {
  const StarSchema schema = GenerateStarSchema({64, 128, 32}, 20000, 2);
  Result<StarJoin> join = StarJoin::Build(schema);
  ASSERT_TRUE(join.ok());
  const StarAggregate result = join.value().Probe(schema, 2);
  EXPECT_EQ(result.matches, schema.fact_rows());
  EXPECT_EQ(result, BruteForce(schema));
}

TEST(StarJoinTest, ParallelBuildsAgreeWithSerial) {
  const StarSchema schema = GenerateStarSchema({256, 512, 64, 1024}, 30000,
                                               3);
  Result<StarJoin> serial = StarJoin::Build(schema, false);
  Result<StarJoin> parallel = StarJoin::Build(schema, true);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(serial.value().Probe(schema, 1),
            parallel.value().Probe(schema, 4));
}

TEST(StarJoinTest, NonMatchingRowsSkipped) {
  StarSchema schema = GenerateStarSchema({100, 100}, 1000, 4);
  // Poison some keys of dimension 1 so those rows cannot match.
  for (std::size_t i = 0; i < 1000; i += 4) {
    schema.fact_keys[1][i] = 100 + static_cast<std::int64_t>(i);
  }
  Result<StarJoin> join = StarJoin::Build(schema);
  ASSERT_TRUE(join.ok());
  const StarAggregate result = join.value().Probe(schema);
  EXPECT_EQ(result.matches, 750u);
  EXPECT_EQ(result, BruteForce(schema));
}

TEST(StarJoinTest, SingleDimensionEqualsNopa) {
  const StarSchema schema = GenerateStarSchema({4096}, 50000, 5);
  Result<StarJoin> join = StarJoin::Build(schema);
  ASSERT_TRUE(join.ok());
  const StarAggregate star = join.value().Probe(schema, 2);
  EXPECT_EQ(star.matches, 50000u);

  // Compare against a plain NOPA join over the same data.
  data::Relation64 outer;
  for (std::size_t i = 0; i < 50000; ++i) {
    outer.Append(schema.fact_keys[0][i], 0);
  }
  Result<JoinAggregate> nopa =
      RunNopaJoin(schema.dimensions[0], outer);
  ASSERT_TRUE(nopa.ok());
  EXPECT_EQ(star.matches, nopa.value().matches);
}

class StarModelTest : public ::testing::Test {
 protected:
  hw::SystemProfile ibm_ = hw::Ac922Profile();
  StarJoinModel model_{&ibm_};
};

TEST_F(StarModelTest, ParallelBuildBeatsSerialForManyDimensions) {
  std::vector<StarDimension> dims(4, StarDimension{64ull << 20, 1.0});
  Result<StarTiming> serial =
      model_.Estimate(hw::kGpu0, hw::kCpu0, 2e9, dims, false);
  Result<StarTiming> parallel =
      model_.Estimate(hw::kGpu0, hw::kCpu0, 2e9, dims, true);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  // The parallel build is ~4x shorter but pays the broadcast.
  EXPECT_LT(parallel.value().build_s.seconds(),
            serial.value().build_s.seconds() / 3.0);
  EXPECT_GT(parallel.value().broadcast_s.seconds(), 0.0);
}

TEST_F(StarModelTest, SelectiveDimensionsShortCircuit) {
  // A highly selective first dimension prunes lookups into the others.
  std::vector<StarDimension> selective = {{16ull << 20, 0.05},
                                          {64ull << 20, 1.0},
                                          {64ull << 20, 1.0}};
  std::vector<StarDimension> permissive = {{16ull << 20, 1.0},
                                           {64ull << 20, 1.0},
                                           {64ull << 20, 1.0}};
  Result<StarTiming> fast =
      model_.Estimate(hw::kGpu0, hw::kCpu0, 4e9, selective, false);
  Result<StarTiming> slow =
      model_.Estimate(hw::kGpu0, hw::kCpu0, 4e9, permissive, false);
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(slow.ok());
  EXPECT_LT(fast.value().probe_s.seconds(), slow.value().probe_s.seconds());
}

TEST_F(StarModelTest, MoreDimensionsCostMore) {
  Seconds previous;
  for (std::size_t k : {1u, 2u, 4u}) {
    std::vector<StarDimension> dims(k, StarDimension{32ull << 20, 1.0});
    Result<StarTiming> timing =
        model_.Estimate(hw::kGpu0, hw::kCpu0, 2e9, dims, true);
    ASSERT_TRUE(timing.ok());
    EXPECT_GT(timing.value().total_s(), previous);
    previous = timing.value().total_s();
  }
}

}  // namespace
}  // namespace pump::join
