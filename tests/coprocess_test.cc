#include "common/units.h"
#include "data/workloads.h"
#include "gtest/gtest.h"
#include "hw/system_profile.h"
#include "join/coprocess.h"

namespace pump::join {
namespace {

using data::WorkloadA;
using data::WorkloadB;
using data::WorkloadC;
using data::WorkloadSpec;
using hw::kCpu0;
using hw::kGpu0;
using hw::kGpu1;

class CoProcessTest : public ::testing::Test {
 protected:
  double Gt(ExecutionStrategy strategy, const WorkloadSpec& w) const {
    Result<JoinTiming> timing = model_.Estimate(strategy, config_, w);
    EXPECT_TRUE(timing.ok()) << timing.status();
    return ToGTuplesPerSecond(timing.value().Throughput(
        static_cast<double>(w.total_tuples())));
  }

  hw::SystemProfile ibm_ = hw::Ac922Profile();
  CoProcessModel model_{&ibm_};
  CoProcessConfig config_{.cpu = kCpu0,
                          .gpu = kGpu0,
                          .extra_gpus = {},
                          .data_location = kCpu0};
};

TEST_F(CoProcessTest, StrategyNames) {
  EXPECT_STREQ(StrategyName(ExecutionStrategy::kCpuOnly), "CPU (NOPA)");
  EXPECT_STREQ(StrategyName(ExecutionStrategy::kHet), "Het");
  EXPECT_STREQ(StrategyName(ExecutionStrategy::kGpuHet), "GPU + Het");
  EXPECT_STREQ(StrategyName(ExecutionStrategy::kGpuOnly), "GPU");
  EXPECT_STREQ(StrategyName(ExecutionStrategy::kMultiGpu), "Multi-GPU");
}

TEST_F(CoProcessTest, Fig21WorkloadAOrdering) {
  // Fig. 21a, workload A: GPU (3.81) > GPU+Het (2.92) > Het (0.82) >
  // CPU (0.52).
  const double cpu = Gt(ExecutionStrategy::kCpuOnly, WorkloadA());
  const double het = Gt(ExecutionStrategy::kHet, WorkloadA());
  const double gpu_het = Gt(ExecutionStrategy::kGpuHet, WorkloadA());
  const double gpu = Gt(ExecutionStrategy::kGpuOnly, WorkloadA());
  EXPECT_GT(het, cpu);
  EXPECT_GT(gpu_het, het);
  EXPECT_GT(gpu, gpu_het);
}

TEST_F(CoProcessTest, Fig21WorkloadABands) {
  EXPECT_NEAR(Gt(ExecutionStrategy::kCpuOnly, WorkloadA()), 0.52, 0.2);
  EXPECT_NEAR(Gt(ExecutionStrategy::kHet, WorkloadA()), 0.82, 0.3);
  EXPECT_NEAR(Gt(ExecutionStrategy::kGpuHet, WorkloadA()), 2.92, 0.8);
  EXPECT_NEAR(Gt(ExecutionStrategy::kGpuOnly, WorkloadA()), 3.81, 0.7);
}

TEST_F(CoProcessTest, Fig21WorkloadBGpuHetWins) {
  // Fig. 21a, workload B: the cooperative GPU+Het strategy outperforms
  // GPU-only by ~16% thanks to processor-local table copies.
  const double gpu = Gt(ExecutionStrategy::kGpuOnly, WorkloadB());
  const double gpu_het = Gt(ExecutionStrategy::kGpuHet, WorkloadB());
  const double het = Gt(ExecutionStrategy::kHet, WorkloadB());
  const double cpu = Gt(ExecutionStrategy::kCpuOnly, WorkloadB());
  EXPECT_GT(gpu_het, gpu);
  EXPECT_LT(gpu_het / gpu, 1.6);
  EXPECT_GT(het, cpu);
  // Paper: Het 1.64, GPU 4.16, GPU+Het 4.85.
  EXPECT_NEAR(gpu, 4.16, 1.0);
  EXPECT_NEAR(het, 1.64, 0.6);
}

TEST_F(CoProcessTest, Fig21AddingGpuNeverHurts) {
  // Sec. 7.2.10: "using a GPU always achieves the same or better
  // throughput than the CPU-only strategy".
  for (const WorkloadSpec& w : {WorkloadA(), WorkloadB(), WorkloadC()}) {
    const double cpu = Gt(ExecutionStrategy::kCpuOnly, w);
    EXPECT_GE(Gt(ExecutionStrategy::kHet, w), cpu * 0.9) << w.name;
    EXPECT_GE(Gt(ExecutionStrategy::kGpuHet, w), cpu * 0.9) << w.name;
    EXPECT_GE(Gt(ExecutionStrategy::kGpuOnly, w), cpu * 0.9) << w.name;
  }
}

TEST_F(CoProcessTest, Fig21bHetBuildIsSlow) {
  // Fig. 21b: concurrent builds on a shared table are slower than a
  // single processor's build.
  Result<JoinTiming> het =
      model_.Estimate(ExecutionStrategy::kHet, config_, WorkloadC());
  Result<JoinTiming> cpu =
      model_.Estimate(ExecutionStrategy::kCpuOnly, config_, WorkloadC());
  ASSERT_TRUE(het.ok());
  ASSERT_TRUE(cpu.ok());
  EXPECT_GT(het.value().build_s.seconds(),
            0.8 * cpu.value().build_s.seconds());
}

TEST_F(CoProcessTest, GpuHetPaysBroadcastCost) {
  Result<JoinTiming> timing =
      model_.Estimate(ExecutionStrategy::kGpuHet, config_, WorkloadA());
  ASSERT_TRUE(timing.ok());
  EXPECT_GT(timing.value().extra_s.seconds(), 0.0);
  // 2 GiB table over NVLink at half rate: ~60 ms.
  EXPECT_NEAR(timing.value().extra_s.seconds(), 2.0 / 31.5, 0.03);
}

TEST_F(CoProcessTest, DecisionTreeFig11) {
  // Workload B's 4 MiB table fits the CPU cache -> GPU+Het.
  EXPECT_EQ(model_.Decide(config_, WorkloadB()),
            ExecutionStrategy::kGpuHet);
  // Workload A's 2 GiB table fits GPU memory, large probe side -> GPU.
  EXPECT_EQ(model_.Decide(config_, WorkloadA()),
            ExecutionStrategy::kGpuOnly);
  // A 24 GiB hash table exceeds GPU memory -> hybrid GPU or Het, whichever
  // the model prefers; both are valid leaves of Fig. 11.
  const WorkloadSpec big =
      data::WorkloadC16(1536ull << 20, 1536ull << 20);
  const ExecutionStrategy choice = model_.Decide(config_, big);
  EXPECT_TRUE(choice == ExecutionStrategy::kGpuOnly ||
              choice == ExecutionStrategy::kHet);
}

TEST_F(CoProcessTest, PlacementForGpuOnlySpillsLargeTables) {
  const WorkloadSpec big =
      data::WorkloadC16(1536ull << 20, 1536ull << 20);
  const HashTablePlacement placement =
      model_.PlacementFor(ExecutionStrategy::kGpuOnly, config_, big);
  ASSERT_EQ(placement.parts.size(), 2u);
  EXPECT_EQ(placement.parts[0].node, kGpu0);
  EXPECT_EQ(placement.parts[1].node, kCpu0);
  EXPECT_GT(placement.parts[0].fraction, 0.5);
}

TEST_F(CoProcessTest, MultiGpuUsesBothLinks) {
  CoProcessConfig config = config_;
  config.extra_gpus = {kGpu1};
  const WorkloadSpec w = WorkloadA();
  Result<JoinTiming> multi =
      model_.Estimate(ExecutionStrategy::kMultiGpu, config, w);
  ASSERT_TRUE(multi.ok());
  EXPECT_GT(multi.value().probe_s.seconds(), 0.0);
  // On the AC922 the GPUs are not directly connected; remote-GPU table
  // shares route over X-Bus, so interleaving does not beat one GPU with a
  // local table (an honest topology consequence, Sec. 6.3 assumes a
  // direct GPU mesh).
  const HashTablePlacement placement =
      model_.PlacementFor(ExecutionStrategy::kMultiGpu, config, w);
  ASSERT_EQ(placement.parts.size(), 2u);
  EXPECT_DOUBLE_EQ(placement.parts[0].fraction, 0.5);
}

}  // namespace
}  // namespace pump::join
