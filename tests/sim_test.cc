#include <cmath>
#include <string>
#include <tuple>

#include "common/units.h"
#include "gtest/gtest.h"
#include "hw/topology.h"
#include "sim/access_path.h"
#include "sim/cache_model.h"
#include "sim/overlap.h"

namespace pump::sim {
namespace {

using hw::kCpu0;
using hw::kCpu1;
using hw::kGpu0;
using hw::kGpu1;

// -------------------------------------------------------------------------
// Access paths: every case is an anchor from the paper's Fig. 3.
// Tuple: (description, device, memory, expected seq GiB/s, expected random
// G accesses/s, expected latency ns, tolerance fraction).
using PathAnchor =
    std::tuple<std::string, hw::DeviceId, hw::MemoryNodeId, double, double,
               double>;

class IbmPathTest : public ::testing::TestWithParam<PathAnchor> {
 protected:
  hw::Topology topo_ = hw::IbmAc922();
};

TEST_P(IbmPathTest, MatchesPaperAnchor) {
  const auto& [name, device, memory, seq_gib, rand_g, latency_ns] =
      GetParam();
  const AccessPath path = MustResolve(topo_, device, memory);
  EXPECT_NEAR(ToGiBPerSecond(path.seq_bw), seq_gib, seq_gib * 0.05) << name;
  EXPECT_NEAR(path.random_access_rate.giga_per_second(), rand_g, rand_g * 0.05) << name;
  EXPECT_NEAR(ToNanoseconds(path.latency), latency_ns, latency_ns * 0.05)
      << name;
}

INSTANTIATE_TEST_SUITE_P(
    Fig3Anchors, IbmPathTest,
    ::testing::Values(
        // Fig. 3c: GPU to its own HBM2.
        PathAnchor{"gpu-local", kGpu0, kGpu0, 729.0, 5.986, 282.0},
        // Fig. 3a/b: GPU to CPU memory over NVLink 2.0.
        PathAnchor{"gpu-nvlink-cpu", kGpu0, kCpu0, 63.0, 0.752, 434.0},
        // Fig. 3b: POWER9 to its local memory.
        PathAnchor{"cpu-local", kCpu0, kCpu0, 117.0, 0.966, 68.0},
        // Fig. 3a: POWER9 to the remote socket over X-Bus.
        PathAnchor{"cpu-xbus-cpu", kCpu0, kCpu1, 32.0, 0.295, 211.0}));

TEST(IntelPathTest, PcieMatchesFig3) {
  hw::Topology topo = hw::IntelXeonV100();
  const AccessPath path = MustResolve(topo, kGpu0, kCpu0);
  EXPECT_NEAR(ToGiBPerSecond(path.seq_bw), 12.0, 0.6);
  EXPECT_NEAR(path.random_access_rate.giga_per_second(), 0.05, 0.005);
  EXPECT_NEAR(ToNanoseconds(path.latency), 790.0, 20.0);
  EXPECT_FALSE(path.cache_coherent);
}

TEST(IntelPathTest, UpiMatchesFig3) {
  hw::Topology topo = hw::IntelXeonV100();
  const AccessPath path = MustResolve(topo, kCpu0, kCpu1);
  EXPECT_NEAR(ToGiBPerSecond(path.seq_bw), 31.0, 1.6);
  EXPECT_NEAR(path.random_access_rate.giga_per_second(), 0.537, 0.03);
  EXPECT_NEAR(ToNanoseconds(path.latency), 121.0, 6.0);
  EXPECT_TRUE(path.cache_coherent);
}

TEST(IntelPathTest, XeonLocalMatchesFig3) {
  hw::Topology topo = hw::IntelXeonV100();
  const AccessPath path = MustResolve(topo, kCpu0, kCpu0);
  EXPECT_NEAR(ToGiBPerSecond(path.seq_bw), 81.0, 4.0);
  EXPECT_NEAR(ToNanoseconds(path.latency), 70.0, 1.0);
}

TEST(AccessPathTest, MultiHopBindsToSlowestLink) {
  hw::Topology topo = hw::IbmAc922();
  // GPU0 -> CPU1 memory crosses NVLink (63) then X-Bus (32): the X-Bus
  // binds (Sec. 7.2.2: "increasing the number of hops is mainly limited by
  // the X-Bus' bandwidth").
  // The X-Bus (32 GiB/s) binds, minus one hop of re-encapsulation loss.
  const AccessPath two_hop = MustResolve(topo, kGpu0, kCpu1);
  EXPECT_EQ(two_hop.hops, 2u);
  EXPECT_NEAR(ToGiBPerSecond(two_hop.seq_bw), 28.4, 1.5);
  EXPECT_NEAR(two_hop.random_access_rate.giga_per_second(), 0.262, 0.02);

  const AccessPath three_hop = MustResolve(topo, kGpu0, kGpu1);
  EXPECT_EQ(three_hop.hops, 3u);
  EXPECT_LT(three_hop.seq_bw, two_hop.seq_bw);
  EXPECT_LT(three_hop.random_access_rate, two_hop.random_access_rate);
  EXPECT_GT(three_hop.latency.seconds(), two_hop.latency.seconds());
}

TEST(AccessPathTest, LatencyAccumulatesPerHop) {
  hw::Topology topo = hw::IbmAc922();
  const double local = MustResolve(topo, kCpu0, kCpu0).latency.seconds();
  const double one = MustResolve(topo, kGpu0, kCpu0).latency.seconds();
  const double two = MustResolve(topo, kGpu0, kCpu1).latency.seconds();
  const double three = MustResolve(topo, kGpu0, kGpu1).latency.seconds();
  EXPECT_LT(local, one);
  EXPECT_LT(one, two);
  EXPECT_LT(two, three);
}

TEST(AccessPathTest, CpuIsLatencyBoundOverInterconnect) {
  hw::Topology topo = hw::IbmAc922();
  // Sec. 6.2: the CPU has significantly lower bandwidth to GPU memory than
  // the GPU has to CPU memory, because it cannot hide the latency.
  const AccessPath cpu_to_gpu = MustResolve(topo, kCpu0, kGpu0);
  const AccessPath gpu_to_cpu = MustResolve(topo, kGpu0, kCpu0);
  EXPECT_LT(cpu_to_gpu.seq_bw.bytes_per_second(),
            0.35 * gpu_to_cpu.seq_bw.bytes_per_second());
}

TEST(AccessPathTest, DependentRateReflectsDeviceFactor) {
  hw::Topology topo = hw::IbmAc922();
  const AccessPath gpu = MustResolve(topo, kGpu0, kGpu0);
  EXPECT_DOUBLE_EQ(gpu.dependent_access_rate.per_second(),
                   gpu.random_access_rate.per_second());
  const AccessPath cpu = MustResolve(topo, kCpu0, kCpu0);
  EXPECT_LT(cpu.dependent_access_rate.per_second(),
            cpu.random_access_rate.per_second());
}

TEST(AccessPathTest, ErrorOnDisconnected) {
  hw::Topology topo;
  topo.AddDevice(hw::Power9(), hw::Power9Memory(), hw::Power9L3());
  topo.AddDevice(hw::TeslaV100(), hw::V100Hbm2(), hw::V100L2());
  EXPECT_FALSE(ResolveAccessPath(topo, 0, 1).ok());
}

TEST(AccessPathTest, ToStringIsInformative) {
  hw::Topology topo = hw::IbmAc922();
  const std::string dump = MustResolve(topo, kGpu0, kCpu0).ToString();
  EXPECT_NE(dump.find("hops=1"), std::string::npos);
  EXPECT_NE(dump.find("coherent=yes"), std::string::npos);
}

// -------------------------------------------------------------------------
// Cache model.

TEST(HarmonicTest, SmallExactValues) {
  EXPECT_DOUBLE_EQ(GeneralizedHarmonic(1, 1.0), 1.0);
  EXPECT_NEAR(GeneralizedHarmonic(2, 1.0), 1.5, 1e-12);
  EXPECT_NEAR(GeneralizedHarmonic(3, 2.0), 1.0 + 0.25 + 1.0 / 9.0, 1e-12);
  EXPECT_DOUBLE_EQ(GeneralizedHarmonic(0, 1.0), 0.0);
}

TEST(HarmonicTest, LargeNTailApproximation) {
  // H_{n,1} ~ ln(n) + gamma.
  const double h = GeneralizedHarmonic(1u << 30, 1.0);
  EXPECT_NEAR(h, std::log(static_cast<double>(1u << 30)) + 0.5772156649,
              1e-3);
}

TEST(HarmonicTest, ZeroExponentCountsItems) {
  EXPECT_NEAR(GeneralizedHarmonic(1000, 0.0), 1000.0, 0.5);
  EXPECT_NEAR(GeneralizedHarmonic(5'000'000, 0.0), 5e6, 5e6 * 1e-4);
}

TEST(CacheModelTest, UniformHitRate) {
  EXPECT_DOUBLE_EQ(UniformHitRate(100, 100), 1.0);
  EXPECT_DOUBLE_EQ(UniformHitRate(100, 200), 1.0);
  EXPECT_DOUBLE_EQ(UniformHitRate(1000, 100), 0.1);
  EXPECT_DOUBLE_EQ(UniformHitRate(0, 0), 1.0);
}

TEST(CacheModelTest, ZipfDegeneratesToUniform) {
  EXPECT_DOUBLE_EQ(ZipfHitRate(1000, 100, 0.0), 0.1);
}

TEST(CacheModelTest, ZipfHitRateGrowsWithSkew) {
  double previous = 0.0;
  for (double z : {0.0, 0.5, 1.0, 1.25, 1.5, 1.75}) {
    const double hit = ZipfHitRate(1u << 27, 1000, z);
    EXPECT_GE(hit, previous) << "z=" << z;
    previous = hit;
  }
}

TEST(CacheModelTest, PaperSkewAnchor) {
  // Sec. 7.2.8: with exponent 1.5 there is a 97.5% chance of hitting one
  // of the top-1000 tuples of the 2^31-tuple probe distribution over 2^27
  // keys. The hit rate of a cache holding the hottest 1000 keys under
  // Zipf(1.5) over 2^27 items reproduces that number.
  const double hit = ZipfHitRate(1u << 27, 1000, 1.5);
  EXPECT_NEAR(hit, 0.975, 0.015);
}

TEST(CacheModelTest, BlendedRateBounds) {
  const double blended = BlendedAccessRate(0.5, 10e9, 1e9);
  EXPECT_GT(blended, 1e9);
  EXPECT_LT(blended, 10e9);
  EXPECT_DOUBLE_EQ(BlendedAccessRate(1.0, 10e9, 1e9), 10e9);
  EXPECT_DOUBLE_EQ(BlendedAccessRate(0.0, 10e9, 1e9), 1e9);
}

TEST(CacheModelTest, CacheResidentEntries) {
  hw::CacheSpec cache;
  cache.capacity = Bytes(1024.0);
  cache.line_bytes = Bytes(128.0);
  EXPECT_EQ(CacheResidentEntries(cache, 16), 64u);
  EXPECT_EQ(CacheResidentEntries(cache, 0), 0u);
}

// -------------------------------------------------------------------------
// Overlap norm.

TEST(OverlapTest, SingleComponentPassesThrough) {
  EXPECT_DOUBLE_EQ(OverlapTime({2.5}, 4.0), 2.5);
}

TEST(OverlapTest, BoundsBetweenMaxAndSum) {
  const double t = OverlapTime({1.0, 2.0, 0.5}, 4.0);
  EXPECT_GT(t, 2.0);
  EXPECT_LT(t, 3.5);
}

TEST(OverlapTest, LargePGoesToMax) {
  EXPECT_NEAR(OverlapTime({1.0, 2.0}, 64.0), 2.0, 0.03);
}

TEST(OverlapTest, PEqualOneIsSum) {
  EXPECT_NEAR(OverlapTime({1.0, 2.0, 3.0}, 1.0), 6.0, 1e-9);
}

TEST(OverlapTest, ZeroComponentsIgnored) {
  EXPECT_DOUBLE_EQ(OverlapTime({0.0, 0.0}, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(OverlapTime({0.0, 3.0}, 2.0), 3.0);
}

}  // namespace
}  // namespace pump::sim
