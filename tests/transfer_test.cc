#include <cstring>
#include <numeric>

#include "common/units.h"
#include "gtest/gtest.h"
#include "hw/system_profile.h"
#include "memory/unified.h"
#include "transfer/executor.h"
#include "transfer/method.h"
#include "transfer/pipeline.h"
#include "transfer/transfer_model.h"

namespace pump::transfer {
namespace {

using hw::kCpu0;
using hw::kGpu0;
using memory::Buffer;
using memory::Extent;
using memory::MemoryKind;

TEST(MethodTraitsTest, Table1Semantics) {
  // Table 1, "Semantics" column.
  EXPECT_EQ(TraitsOf(TransferMethod::kPageableCopy).semantics,
            Semantics::kPush);
  EXPECT_EQ(TraitsOf(TransferMethod::kStagedCopy).semantics, Semantics::kPush);
  EXPECT_EQ(TraitsOf(TransferMethod::kDynamicPinning).semantics,
            Semantics::kPush);
  EXPECT_EQ(TraitsOf(TransferMethod::kPinnedCopy).semantics, Semantics::kPush);
  EXPECT_EQ(TraitsOf(TransferMethod::kUmPrefetch).semantics, Semantics::kPush);
  EXPECT_EQ(TraitsOf(TransferMethod::kUmMigration).semantics,
            Semantics::kPull);
  EXPECT_EQ(TraitsOf(TransferMethod::kZeroCopy).semantics, Semantics::kPull);
  EXPECT_EQ(TraitsOf(TransferMethod::kCoherence).semantics, Semantics::kPull);
}

TEST(MethodTraitsTest, Table1Granularity) {
  EXPECT_EQ(TraitsOf(TransferMethod::kUmMigration).granularity,
            Granularity::kPage);
  EXPECT_EQ(TraitsOf(TransferMethod::kZeroCopy).granularity,
            Granularity::kByte);
  EXPECT_EQ(TraitsOf(TransferMethod::kCoherence).granularity,
            Granularity::kByte);
  EXPECT_EQ(TraitsOf(TransferMethod::kPinnedCopy).granularity,
            Granularity::kChunk);
}

TEST(MethodTraitsTest, Table1MemoryKinds) {
  EXPECT_EQ(TraitsOf(TransferMethod::kPageableCopy).required_memory,
            MemoryKind::kPageable);
  EXPECT_EQ(TraitsOf(TransferMethod::kPinnedCopy).required_memory,
            MemoryKind::kPinned);
  EXPECT_EQ(TraitsOf(TransferMethod::kZeroCopy).required_memory,
            MemoryKind::kPinned);
  EXPECT_EQ(TraitsOf(TransferMethod::kUmPrefetch).required_memory,
            MemoryKind::kUnified);
  EXPECT_EQ(TraitsOf(TransferMethod::kCoherence).required_memory,
            MemoryKind::kPageable);
}

TEST(MethodTraitsTest, OnlyPullMethodsSupportDataDependence) {
  // Sec. 4.2: push-based methods cannot satisfy data-dependent accesses.
  EXPECT_FALSE(
      TransferModel::SupportsDataDependentAccess(TransferMethod::kStagedCopy));
  EXPECT_FALSE(
      TransferModel::SupportsDataDependentAccess(TransferMethod::kPinnedCopy));
  EXPECT_TRUE(
      TransferModel::SupportsDataDependentAccess(TransferMethod::kZeroCopy));
  EXPECT_TRUE(
      TransferModel::SupportsDataDependentAccess(TransferMethod::kCoherence));
  EXPECT_TRUE(TransferModel::SupportsDataDependentAccess(
      TransferMethod::kUmMigration));
}

TEST(PipelineTest, MakespanSingleStage) {
  std::vector<PipelineStage> stages = {
      {"copy", BytesPerSecond(100.0), Seconds(0.0)}};
  // 10 chunks of 10 bytes at 100 B/s: 0.1 s fill + 9 * 0.1 s.
  EXPECT_NEAR(PipelineMakespan(stages, Bytes(100.0), Bytes(10.0)).seconds(),
              1.0, 1e-9);
}

TEST(PipelineTest, MakespanTwoStagesOverlaps) {
  std::vector<PipelineStage> stages = {
      {"a", BytesPerSecond(100.0), Seconds(0.0)},
      {"b", BytesPerSecond(100.0), Seconds(0.0)}};
  // Perfect two-stage pipeline: fill 0.2 s + 9 * 0.1 s = 1.1 s, well under
  // the 2.0 s serial time.
  EXPECT_NEAR(PipelineMakespan(stages, Bytes(100.0), Bytes(10.0)).seconds(),
              1.1, 1e-9);
}

TEST(PipelineTest, BottleneckStagePaces) {
  std::vector<PipelineStage> stages = {
      {"fast", BytesPerSecond(1000.0), Seconds(0.0)},
      {"slow", BytesPerSecond(10.0), Seconds(0.0)}};
  EXPECT_NEAR(
      PipelineSteadyStateRate(stages, Bytes(10.0)).bytes_per_second(),
      10.0, 1e-9);
}

TEST(PipelineTest, PerChunkLatencyFavorsLargerChunks) {
  std::vector<PipelineStage> stages = {
      {"dma", BytesPerSecond(1e9), Seconds::Micros(10.0)}};
  const BytesPerSecond small = PipelineSteadyStateRate(stages, Bytes::KiB(64));
  const BytesPerSecond large = PipelineSteadyStateRate(stages, Bytes::MiB(8));
  EXPECT_GT(large.bytes_per_second(), small.bytes_per_second());
}

TEST(PipelineTest, EmptyInputs) {
  EXPECT_DOUBLE_EQ(
      PipelineMakespan({}, Bytes(100.0), Bytes(10.0)).seconds(), 0.0);
  EXPECT_DOUBLE_EQ(
      PipelineMakespan({{"a", BytesPerSecond(1.0), Seconds(0.0)}},
                       Bytes(0.0), Bytes(10.0))
          .seconds(),
      0.0);
  EXPECT_DOUBLE_EQ(
      PipelineSteadyStateRate({}, Bytes(10.0)).bytes_per_second(), 0.0);
}

class TransferModelIbmTest : public ::testing::Test {
 protected:
  hw::SystemProfile profile_ = hw::Ac922Profile();
  TransferModel model_{&profile_};
};

class TransferModelIntelTest : public ::testing::Test {
 protected:
  hw::SystemProfile profile_ = hw::XeonProfile();
  TransferModel model_{&profile_};
};

TEST_F(TransferModelIntelTest, CoherenceUnsupportedOnPcie) {
  // Fig. 12: the Coherence method does not exist on PCI-e 3.0.
  Status status = model_.Validate(TransferMethod::kCoherence, kGpu0, kCpu0,
                                  MemoryKind::kPageable);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kUnsupported);
}

TEST_F(TransferModelIbmTest, CoherenceSupportedOnNvlink) {
  EXPECT_TRUE(model_
                  .Validate(TransferMethod::kCoherence, kGpu0, kCpu0,
                            MemoryKind::kPageable)
                  .ok());
  // Coherence also reaches pinned memory (any CPU memory, Sec. 4.2).
  EXPECT_TRUE(model_
                  .Validate(TransferMethod::kCoherence, kGpu0, kCpu0,
                            MemoryKind::kPinned)
                  .ok());
}

TEST_F(TransferModelIbmTest, MemoryKindMismatchRejected) {
  EXPECT_FALSE(model_
                   .Validate(TransferMethod::kZeroCopy, kGpu0, kCpu0,
                             MemoryKind::kPageable)
                   .ok());
  EXPECT_FALSE(model_
                   .Validate(TransferMethod::kPinnedCopy, kGpu0, kCpu0,
                             MemoryKind::kPageable)
                   .ok());
  EXPECT_FALSE(model_
                   .Validate(TransferMethod::kUmPrefetch, kGpu0, kCpu0,
                             MemoryKind::kPageable)
                   .ok());
}

TEST_F(TransferModelIbmTest, NvlinkIngestOrdering) {
  // Fig. 12, NVLink column: Coherence ~ Zero-Copy > Pinned Copy > Dynamic
  // Pinning > Staged Copy > Pageable Copy > UM methods.
  auto bw = [&](TransferMethod m) {
    return model_.IngestBandwidth(m, kGpu0, kCpu0).value();
  };
  const BytesPerSecond coherence = bw(TransferMethod::kCoherence);
  const BytesPerSecond zero_copy = bw(TransferMethod::kZeroCopy);
  const BytesPerSecond pinned = bw(TransferMethod::kPinnedCopy);
  const BytesPerSecond dynamic = bw(TransferMethod::kDynamicPinning);
  const BytesPerSecond staged = bw(TransferMethod::kStagedCopy);
  const BytesPerSecond pageable = bw(TransferMethod::kPageableCopy);
  const BytesPerSecond um_prefetch = bw(TransferMethod::kUmPrefetch);
  const BytesPerSecond um_migration = bw(TransferMethod::kUmMigration);

  EXPECT_NEAR(coherence / zero_copy, 1.0, 0.02);
  EXPECT_GT(zero_copy.bytes_per_second(), pinned.bytes_per_second());
  EXPECT_GT(pinned.bytes_per_second(), dynamic.bytes_per_second());
  EXPECT_GT(dynamic.bytes_per_second(), staged.bytes_per_second());
  EXPECT_GT(staged.bytes_per_second(), pageable.bytes_per_second());
  EXPECT_GT(pageable.bytes_per_second(), um_prefetch.bytes_per_second());
  EXPECT_GT(um_prefetch.bytes_per_second(), um_migration.bytes_per_second());
  // Coherence saturates the link: 63 GiB/s measured (Fig. 3a).
  EXPECT_NEAR(ToGiBPerSecond(coherence), 63.0, 2.0);
}

TEST_F(TransferModelIntelTest, PcieIngestOrdering) {
  // Fig. 12, PCI-e column: Zero-Copy ~ Pinned ~ Staged > UM Prefetch >
  // Pageable ~ Dynamic Pinning ~ UM Migration.
  auto bw = [&](TransferMethod m) {
    return model_.IngestBandwidth(m, kGpu0, kCpu0).value();
  };
  const BytesPerSecond zero_copy = bw(TransferMethod::kZeroCopy);
  const BytesPerSecond pinned = bw(TransferMethod::kPinnedCopy);
  const BytesPerSecond staged = bw(TransferMethod::kStagedCopy);
  const BytesPerSecond um_prefetch = bw(TransferMethod::kUmPrefetch);
  const BytesPerSecond pageable = bw(TransferMethod::kPageableCopy);
  const BytesPerSecond dynamic = bw(TransferMethod::kDynamicPinning);
  const BytesPerSecond um_migration = bw(TransferMethod::kUmMigration);

  EXPECT_NEAR(ToGiBPerSecond(zero_copy), 12.0, 0.5);
  EXPECT_NEAR(pinned / zero_copy, 1.0, 0.05);
  // Sec. 7.2.1: Staged Copy is within 5% of Zero Copy on PCI-e.
  EXPECT_GT(staged / zero_copy, 0.93);
  EXPECT_LT(um_prefetch.bytes_per_second(),
            0.8 * zero_copy.bytes_per_second());
  EXPECT_LT(pageable.bytes_per_second(), 0.5 * zero_copy.bytes_per_second());
  EXPECT_LT(dynamic.bytes_per_second(), 0.5 * zero_copy.bytes_per_second());
  EXPECT_LT(um_migration.bytes_per_second(),
            0.5 * zero_copy.bytes_per_second());
}

TEST_F(TransferModelIbmTest, NvlinkBeatsPcieForEveryCommonMethod) {
  hw::SystemProfile intel = hw::XeonProfile();
  TransferModel pcie_model(&intel);
  for (TransferMethod method : kAllTransferMethods) {
    if (method == TransferMethod::kCoherence) continue;
    if (method == TransferMethod::kUmPrefetch ||
        method == TransferMethod::kUmMigration) {
      // Fig. 12 footnote: the POWER9 UM driver path underperforms x86-64;
      // these are the only two methods where NVLink loses.
      continue;
    }
    const BytesPerSecond nvlink =
        model_.IngestBandwidth(method, kGpu0, kCpu0).value();
    const BytesPerSecond pcie =
        pcie_model.IngestBandwidth(method, kGpu0, kCpu0).value();
    EXPECT_GT(nvlink.bytes_per_second(), pcie.bytes_per_second())
        << TransferMethodToString(method);
  }
}

TEST_F(TransferModelIbmTest, TransferTimeScalesWithBytes) {
  const Seconds t1 = model_
                         .TransferTime(TransferMethod::kCoherence, kGpu0,
                                       kCpu0, Bytes::GiB(1))
                         .value();
  const Seconds t2 = model_
                         .TransferTime(TransferMethod::kCoherence, kGpu0,
                                       kCpu0, Bytes::GiB(2))
                         .value();
  EXPECT_NEAR(t2 / t1, 2.0, 0.05);
}

// ---------------------------------------------------------------------------
// Functional executor.

class ExecutorTest : public ::testing::TestWithParam<TransferMethod> {
 protected:
  static constexpr std::uint64_t kBytes = 256 * 1024;
  static constexpr std::uint64_t kChunk = 64 * 1024;
  static constexpr std::uint64_t kPage = 4 * 1024;

  Buffer MakeSource() {
    Buffer src(kBytes, TraitsOf(GetParam()).required_memory,
               {Extent{kCpu0, kBytes}});
    for (std::uint64_t i = 0; i < kBytes; ++i) {
      src.data()[i] = static_cast<std::byte>(i * 31 + 7);
    }
    return src;
  }
};

TEST_P(ExecutorTest, MovesOrExposesAllBytes) {
  const TransferMethod method = GetParam();
  Buffer src = MakeSource();
  Buffer dst(kBytes, MemoryKind::kDevice, {Extent{kGpu0, kBytes}});
  memory::UnifiedRegion region(kBytes, kPage, kCpu0);

  std::uint64_t chunk_bytes_seen = 0;
  Result<TransferStats> stats = ExecuteTransfer(
      method, src, &dst, kGpu0, kChunk, kPage, &region,
      [&](std::uint64_t, std::uint64_t len) { chunk_bytes_seen += len; });
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(chunk_bytes_seen, kBytes);
  EXPECT_EQ(stats.value().chunks, kBytes / kChunk);

  if (TraitsOf(method).semantics == Semantics::kPush) {
    EXPECT_EQ(stats.value().bytes_copied, kBytes);
    EXPECT_EQ(std::memcmp(src.data(), dst.data(), kBytes), 0);
  } else {
    EXPECT_TRUE(stats.value().direct_access);
  }
}

INSTANTIATE_TEST_SUITE_P(AllMethods, ExecutorTest,
                         ::testing::ValuesIn(kAllTransferMethods),
                         [](const auto& info) {
                           std::string name =
                               TransferMethodToString(info.param);
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           }
                           return name;
                         });

TEST(ExecutorDetailTest, StagedCopyCountsStagingBytes) {
  Buffer src(8192, MemoryKind::kPageable, {Extent{kCpu0, 8192}});
  Buffer dst(8192, MemoryKind::kDevice, {Extent{kGpu0, 8192}});
  auto stats = ExecuteTransfer(TransferMethod::kStagedCopy, src, &dst, kGpu0,
                               4096, 4096);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().staged_bytes, 8192u);
}

TEST(ExecutorDetailTest, DynamicPinningCountsPages) {
  Buffer src(64 * 1024, MemoryKind::kPageable, {Extent{kCpu0, 64 * 1024}});
  Buffer dst(64 * 1024, MemoryKind::kDevice, {Extent{kGpu0, 64 * 1024}});
  auto stats = ExecuteTransfer(TransferMethod::kDynamicPinning, src, &dst,
                               kGpu0, 16 * 1024, 4 * 1024);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().pages_pinned, 16u);
}

TEST(ExecutorDetailTest, UmMigrationMovesResidency) {
  Buffer src(64 * 1024, MemoryKind::kUnified, {Extent{kCpu0, 64 * 1024}});
  memory::UnifiedRegion region(64 * 1024, 4 * 1024, kCpu0);
  auto stats = ExecuteTransfer(TransferMethod::kUmMigration, src, nullptr,
                               kGpu0, 16 * 1024, 4 * 1024, &region);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().pages_migrated, 16u);
  EXPECT_EQ(region.PagesOn(kGpu0), 16u);
}

TEST(ExecutorDetailTest, UmMethodsRequireRegion) {
  Buffer src(4096, MemoryKind::kUnified, {Extent{kCpu0, 4096}});
  Buffer dst(4096, MemoryKind::kDevice, {Extent{kGpu0, 4096}});
  EXPECT_FALSE(ExecuteTransfer(TransferMethod::kUmPrefetch, src, &dst, kGpu0,
                               4096, 4096, nullptr)
                   .ok());
}

TEST(ExecutorDetailTest, PushNeedsDestination) {
  Buffer src(4096, MemoryKind::kPinned, {Extent{kCpu0, 4096}});
  EXPECT_FALSE(ExecuteTransfer(TransferMethod::kPinnedCopy, src, nullptr,
                               kGpu0, 4096, 4096)
                   .ok());
  Buffer small(1024, MemoryKind::kDevice, {Extent{kGpu0, 1024}});
  EXPECT_FALSE(ExecuteTransfer(TransferMethod::kPinnedCopy, src, &small,
                               kGpu0, 4096, 4096)
                   .ok());
}

TEST(ExecutorDetailTest, RejectsZeroChunk) {
  Buffer src(4096, MemoryKind::kPinned, {Extent{kCpu0, 4096}});
  Buffer dst(4096, MemoryKind::kDevice, {Extent{kGpu0, 4096}});
  EXPECT_FALSE(ExecuteTransfer(TransferMethod::kPinnedCopy, src, &dst, kGpu0,
                               0, 4096)
                   .ok());
}

}  // namespace
}  // namespace pump::transfer
