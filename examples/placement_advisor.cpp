// Placement advisor: walk the hash-table placement decision tree of
// Fig. 11 for a range of build-side sizes and print which strategy and
// placement the model recommends, including the hybrid split the greedy
// allocator (Fig. 8) would produce — the piece a query optimizer would
// call before scheduling a join on a GPU.
//
// Build & run:  ./build/examples/placement_advisor

#include <iostream>

#include "common/table_printer.h"
#include "common/units.h"
#include "data/workloads.h"
#include "hw/system_profile.h"
#include "join/coprocess.h"
#include "memory/allocator.h"

int main() {
  using namespace pump;

  hw::SystemProfile ac922 = hw::Ac922Profile();
  const join::CoProcessModel model(&ac922);
  join::CoProcessConfig config;
  config.cpu = hw::kCpu0;
  config.gpu = hw::kGpu0;
  config.data_location = hw::kCpu0;

  std::cout << "Fig. 11 placement decisions on the AC922 "
               "(16 GiB GPU, 1 GiB reserved):\n\n";

  TablePrinter table({"|R| (M tuples)", "Hash table", "Strategy",
                      "Placement", "Modelled G Tuples/s"});
  for (std::uint64_t m :
       {1ull, 16ull, 128ull, 512ull, 896ull, 1280ull, 2048ull}) {
    const data::WorkloadSpec w = data::WorkloadC16(m << 20, 2048ull << 20);
    const join::ExecutionStrategy strategy = model.Decide(config, w);
    const join::HashTablePlacement placement =
        model.PlacementFor(strategy, config, w);

    std::string placement_text;
    for (const auto& part : placement.parts) {
      if (!placement_text.empty()) placement_text += " + ";
      placement_text +=
          TablePrinter::FormatDouble(part.fraction * 100, 0) + "% node" +
          std::to_string(part.node);
    }
    Result<join::JoinTiming> timing = model.Estimate(strategy, config, w);
    table.AddRow(
        {std::to_string(m),
         TablePrinter::FormatDouble(
             static_cast<double>(w.hash_table_bytes()) / kGiB, 2) +
             " GiB",
         join::StrategyName(strategy), placement_text,
         timing.ok() ? TablePrinter::FormatDouble(
                           ToGTuplesPerSecond(timing.value().Throughput(
                               static_cast<double>(w.total_tuples()))),
                           2)
                     : "n/a"});
  }
  table.Print(std::cout);

  std::cout << "\nReading the table: tiny builds fit every cache and the\n"
               "broadcast strategy (GPU + Het) wins; mid-size builds live\n"
               "in GPU memory and the GPU runs alone; once the table\n"
               "exceeds GPU memory the greedy allocator splits it and the\n"
               "join degrades gracefully instead of falling off the\n"
               "PCI-e-era cliff (Sec. 5.3).\n";
  return 0;
}
