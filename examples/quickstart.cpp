// Quickstart: run a no-partitioning hash join functionally on the host and
// ask the hardware model what the same join would cost at paper scale on
// the NVLink 2.0 testbed.
//
// Build & run:  ./build/examples/quickstart

#include <iostream>

#include "common/units.h"
#include "data/generator.h"
#include "data/workloads.h"
#include "hw/system_profile.h"
#include "join/cost_model.h"
#include "join/nopa.h"

int main() {
  using namespace pump;

  // --- 1. Functional join at host scale -------------------------------
  // R: 1M tuples with unique keys; S: 8M uniform foreign keys.
  const auto inner = data::GenerateInner<std::int64_t, std::int64_t>(
      1 << 20, /*seed=*/42);
  const auto outer = data::GenerateOuterUniform<std::int64_t, std::int64_t>(
      8 << 20, 1 << 20, /*seed=*/43);

  Result<join::JoinAggregate> aggregate =
      join::RunNopaJoin(inner, outer, /*workers=*/2);
  if (!aggregate.ok()) {
    std::cerr << "join failed: " << aggregate.status() << "\n";
    return 1;
  }
  std::cout << "Functional join: " << aggregate.value().matches
            << " matches, payload sum " << aggregate.value().payload_sum
            << "\n";

  // --- 2. The same join at paper scale on the modelled AC922 ----------
  const hw::SystemProfile ac922 = hw::Ac922Profile();
  std::cout << "\nModelled system:\n" << ac922.topology.ToString() << "\n";

  const join::NopaJoinModel model(&ac922);
  join::NopaConfig config;
  config.device = hw::kGpu0;           // Run on the V100.
  config.r_location = hw::kCpu0;       // Base relations in CPU memory...
  config.s_location = hw::kCpu0;
  config.hash_table =                  // ...hash table in GPU memory.
      join::HashTablePlacement::Single(hw::kGpu0);
  config.method = transfer::TransferMethod::kCoherence;  // NVLink pull.

  const data::WorkloadSpec workload = data::WorkloadA();  // 2 GiB x 32 GiB.
  Result<join::JoinTiming> timing = model.Estimate(config, workload);
  if (!timing.ok()) {
    std::cerr << "model failed: " << timing.status() << "\n";
    return 1;
  }
  std::cout << "Workload A over NVLink 2.0 (Coherence method):\n"
            << "  build " << timing.value().build_s.seconds()
            << " s, probe " << timing.value().probe_s.seconds()
            << " s  =>  "
            << ToGTuplesPerSecond(timing.value().Throughput(
                   static_cast<double>(workload.total_tuples())))
            << " G Tuples/s (paper: 3.83)\n";
  return 0;
}
