// Transfer explorer: enumerate the eight transfer methods of Table 1 on
// both modelled systems, show which are legal for which memory kinds, and
// execute one functionally (Staged Copy, with its pinned staging buffer)
// to show the executor's bookkeeping.
//
// Build & run:  ./build/examples/transfer_explorer

#include <cmath>
#include <cstring>
#include <iostream>

#include "common/table_printer.h"
#include "common/units.h"
#include "hw/system_profile.h"
#include "memory/unified.h"
#include "transfer/executor.h"
#include "transfer/transfer_model.h"

int main() {
  using namespace pump;
  using transfer::TransferMethod;

  const hw::SystemProfile systems[] = {hw::Ac922Profile(),
                                       hw::XeonProfile()};
  for (const hw::SystemProfile& system : systems) {
    std::cout << "== " << system.name << " ==\n";
    const transfer::TransferModel model(&system);
    TablePrinter table({"Method", "Semantics", "Granularity", "Memory",
                        "Ingest GiB/s"});
    for (TransferMethod method : transfer::kAllTransferMethods) {
      const transfer::MethodTraits& traits = transfer::TraitsOf(method);
      Status valid = model.Validate(method, hw::kGpu0, hw::kCpu0,
                                    traits.required_memory);
      std::string bandwidth = "Unsupported";
      if (valid.ok()) {
        bandwidth = TablePrinter::FormatDouble(
            ToGiBPerSecond(
                model.IngestBandwidth(method, hw::kGpu0, hw::kCpu0).value()),
            1);
      }
      table.AddRow(
          {traits.name,
           traits.semantics == transfer::Semantics::kPush ? "push" : "pull",
           traits.granularity == transfer::Granularity::kChunk ? "chunk"
           : traits.granularity == transfer::Granularity::kPage ? "page"
                                                                : "byte",
           memory::MemoryKindToString(traits.required_memory), bandwidth});
    }
    table.Print(std::cout);
    std::cout << "\n";
  }

  // Functional execution of Staged Copy: 8 MiB through a 1 MiB pinned
  // staging buffer.
  const std::uint64_t bytes = 8ull << 20;
  memory::Buffer src(bytes, memory::MemoryKind::kPageable,
                     {memory::Extent{hw::kCpu0, bytes}});
  for (std::uint64_t i = 0; i < bytes; ++i) {
    src.data()[i] = static_cast<std::byte>(i);
  }
  memory::Buffer dst(bytes, memory::MemoryKind::kDevice,
                     {memory::Extent{hw::kGpu0, bytes}});
  auto stats = transfer::ExecuteTransfer(
      TransferMethod::kStagedCopy, src, &dst, hw::kGpu0,
      /*chunk_bytes=*/1 << 20, /*os_page_bytes=*/64 * 1024);
  std::cout << "Staged Copy executed: " << stats.value().chunks
            << " chunks, " << stats.value().staged_bytes
            << " bytes through the pinned staging buffer, payload intact: "
            << (std::memcmp(src.data(), dst.data(), bytes) == 0 ? "yes"
                                                                : "NO")
            << "\n";
  return 0;
}
