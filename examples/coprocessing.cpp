// Cooperative CPU+GPU execution: run the heterogeneous morsel scheduler
// functionally (CPU workers pull single morsels, a GPU proxy pulls
// batches, Fig. 10) on a shared hash table, then compare the four
// execution strategies of Fig. 21 with the cost model and print the
// Fig. 11 placement recommendation.
//
// Build & run:  ./build/examples/coprocessing

#include <atomic>
#include <iostream>

#include "common/units.h"
#include "data/generator.h"
#include "data/workloads.h"
#include "exec/het_scheduler.h"
#include "hash/hash_table.h"
#include "hw/system_profile.h"
#include "join/coprocess.h"
#include "join/nopa.h"

int main() {
  using namespace pump;

  // --- 1. Functional heterogeneous probe ------------------------------
  const std::size_t n = 1 << 18;
  const auto inner = data::GenerateInner<std::int64_t, std::int64_t>(n, 3);
  const auto outer = data::GenerateOuterUniform<std::int64_t, std::int64_t>(
      2 << 20, n, 4);

  hash::PerfectHashTable<std::int64_t, std::int64_t> table(n);
  if (Status status = join::BuildPhase(&table, inner, 2); !status.ok()) {
    std::cerr << "build failed: " << status << "\n";
    return 1;
  }

  std::atomic<std::uint64_t> matches{0};
  auto probe = [&](std::size_t begin, std::size_t end) {
    std::uint64_t local = 0;
    for (std::size_t i = begin; i < end; ++i) {
      std::int64_t value;
      if (table.Lookup(outer.keys[i], &value)) ++local;
    }
    matches.fetch_add(local, std::memory_order_relaxed);
  };

  std::vector<exec::ProcessorGroup> groups;
  groups.push_back({"CPU", /*workers=*/2, /*batch_morsels=*/1, probe});
  groups.push_back({"GPU", /*workers=*/1, /*batch_morsels=*/16, probe});
  const auto stats =
      exec::RunHeterogeneous(outer.size(), /*morsel_tuples=*/50'000,
                             std::move(groups));
  std::cout << "Heterogeneous probe of " << outer.size() << " tuples ("
            << matches.load() << " matches):\n";
  for (const exec::GroupStats& group : stats) {
    std::cout << "  " << group.name << ": " << group.tuples << " tuples in "
              << group.dispatches << " dispatches\n";
  }

  // --- 2. Strategy comparison at paper scale --------------------------
  const hw::SystemProfile ac922 = hw::Ac922Profile();
  const join::CoProcessModel model(&ac922);
  join::CoProcessConfig config;
  config.cpu = hw::kCpu0;
  config.gpu = hw::kGpu0;
  config.data_location = hw::kCpu0;

  std::cout << "\nModelled strategies (G Tuples/s):\n";
  for (const data::WorkloadSpec& w :
       {data::WorkloadA(), data::WorkloadB(), data::WorkloadC()}) {
    std::cout << "  workload " << w.name << ":";
    for (auto strategy :
         {join::ExecutionStrategy::kCpuOnly, join::ExecutionStrategy::kHet,
          join::ExecutionStrategy::kGpuHet,
          join::ExecutionStrategy::kGpuOnly}) {
      Result<join::JoinTiming> timing = model.Estimate(strategy, config, w);
      std::cout << "  " << join::StrategyName(strategy) << " = "
                << ToGTuplesPerSecond(timing.value().Throughput(
                       static_cast<double>(w.total_tuples())));
    }
    std::cout << "  | Fig. 11 picks: "
              << join::StrategyName(model.Decide(config, w)) << "\n";
  }
  return 0;
}
