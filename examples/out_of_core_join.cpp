// Out-of-core join: the build side exceeds GPU memory, so the hash table
// is allocated with the greedy hybrid allocator (Sec. 5.3 / Fig. 8) and
// spills into CPU memory. The join algorithm is unchanged — it sees one
// contiguous table. Demonstrates both the functional path (host scale,
// with a tiny modelled "GPU" budget to force the spill) and the cost
// model at paper scale.
//
// Build & run:  ./build/examples/out_of_core_join

#include <iostream>

#include "common/units.h"
#include "data/generator.h"
#include "data/workloads.h"
#include "hash/hybrid_table.h"
#include "hw/system_profile.h"
#include "join/cost_model.h"
#include "join/nopa.h"
#include "memory/allocator.h"

int main() {
  using namespace pump;

  hw::SystemProfile ac922 = hw::Ac922Profile();

  // --- 1. Functional spill at host scale ------------------------------
  // Reserve almost all modelled GPU memory so a 1M-entry table must spill.
  memory::MemoryManager manager(&ac922.topology, /*materialize=*/true);
  const std::uint64_t gpu_capacity =
      ac922.topology.memory(hw::kGpu0).capacity.u64();
  const std::size_t entries = 1 << 20;
  auto table = hash::HybridHashTable<std::int64_t, std::int64_t>::Create(
      &manager, hw::kGpu0, entries,
      /*gpu_reserve_bytes=*/gpu_capacity - (entries / 2) * 16);
  if (!table.ok()) {
    std::cerr << "allocation failed: " << table.status() << "\n";
    return 1;
  }
  std::cout << "Hybrid hash table: " << table.value().buffer().ToString()
            << "\n  GPU fraction (A_GPU): " << table.value().gpu_fraction()
            << "\n";

  const auto inner =
      data::GenerateInner<std::int64_t, std::int64_t>(entries, 7);
  const auto outer = data::GenerateOuterUniform<std::int64_t, std::int64_t>(
      4 << 20, entries, 8);
  Result<join::JoinAggregate> aggregate =
      join::RunNopaJoinOn(&table.value().table(), inner, outer, 2);
  std::cout << "  functional join across the split: "
            << aggregate.value().matches << " matches\n";

  // --- 2. Paper-scale model: 24 GiB table on a 16 GiB GPU -------------
  const data::WorkloadSpec big =
      data::WorkloadC16(1536ull << 20, 1536ull << 20);
  memory::MemoryManager planner(&ac922.topology, /*materialize=*/false);
  Result<memory::Buffer> plan = planner.AllocateHybrid(
      big.hash_table_bytes(), hw::kGpu0, /*gpu_reserve_bytes=*/1ull << 30);

  const join::NopaJoinModel model(&ac922);
  join::NopaConfig config;
  config.device = hw::kGpu0;
  config.r_location = hw::kCpu0;
  config.s_location = hw::kCpu0;

  config.hash_table = join::HashTablePlacement::Single(hw::kCpu0);
  const double cpu_only_tput = ToGTuplesPerSecond(
      model.Estimate(config, big).value().Throughput(
          static_cast<double>(big.total_tuples())));

  config.hash_table = join::HashTablePlacement::FromBuffer(plan.value());
  const double hybrid_tput = ToGTuplesPerSecond(
      model.Estimate(config, big).value().Throughput(
          static_cast<double>(big.total_tuples())));

  std::cout << "\n24 GiB hash table on the 16 GiB V100 (workload C16):\n"
            << "  table fully in CPU memory: " << cpu_only_tput
            << " G Tuples/s\n"
            << "  hybrid (GPU-first spill):  " << hybrid_tput
            << " G Tuples/s  (" << hybrid_tput / cpu_only_tput
            << "x, paper reports 1-2.2x)\n";
  return 0;
}
