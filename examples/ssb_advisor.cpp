// End-to-end engine walkthrough: generate a Star Schema Benchmark-style
// database, run two queries functionally through the engine's executor,
// then ask the model-driven Advisor where the same queries should run at
// warehouse scale (the Fig. 11 logic generalized to whole queries).
//
// Build & run:  ./build/examples/ssb_advisor

#include <iostream>

#include "engine/advisor.h"
#include "engine/executor.h"
#include "engine/ssb.h"
#include "hw/system_profile.h"

int main() {
  using namespace pump;
  using namespace pump::engine;

  // --- 1. Functional execution at host scale ---------------------------
  const SsbDatabase db = SsbDatabase::Generate(1'000'000, 42);
  std::cout << "SSB-style database: lineorder " << db.lineorder.rows()
            << " rows, date " << db.date.rows() << ", customer "
            << db.customer.rows() << ", supplier " << db.supplier.rows()
            << "\n\n";

  const Query q1 = SsbQ1(db);
  const Query q2 = SsbQ2(db);
  const QueryResult r1 = Executor::Run(q1, 2).value();
  const QueryResult r2 = Executor::Run(q2, 2).value();
  std::cout << "Q1 (date join + discount/quantity filters): " << r1.rows
            << " rows, revenue " << r1.sum << "\n";
  std::cout << "Q2 (customer + supplier region joins):      " << r2.rows
            << " rows, revenue " << r2.sum << "\n\n";

  // --- 2. Model-driven planning at warehouse scale ----------------------
  // Scale the same queries to SSB SF ~1000 (6 G lineorder rows).
  const double scale = 6000.0;
  for (const auto& [name, query] :
       {std::pair{"Q1", &q1}, std::pair{"Q2", &q2}}) {
    const QueryStats stats = StatsFromQuery(*query, scale);
    std::cout << name << " at " << stats.fact_rows / 1e9
              << "G fact rows:\n";
    for (const auto& [system_name, profile] :
         {std::pair{"AC922 (NVLink 2.0)", hw::Ac922Profile()},
          std::pair{"Xeon (PCI-e 3.0)", hw::XeonProfile()}}) {
      const Advisor advisor(&profile);
      Result<PlanChoice> plan = advisor.Recommend(stats, hw::kCpu0);
      if (!plan.ok()) continue;
      std::cout << "  " << system_name << ": run on "
                << plan.value().rationale << ", predicted "
                << plan.value().predicted_seconds.seconds() << " s\n";
    }
  }
  std::cout << "\nThe NVLink system offloads both queries to the GPU via "
               "the Coherence method;\nthe PCI-e system keeps scan-heavy "
               "plans wherever the model says the transfer\nbottleneck "
               "hurts least — the paper's Fig. 11 decision, automated.\n";
  return 0;
}
