// Regenerates Figure 21: cooperative CPU+GPU execution. (a) throughput of
// the CPU-only, Het, GPU+Het, and GPU-only strategies on workloads A/B/C;
// (b) per-phase times for workload C (scaled); plus the Sec. 6.3
// multi-GPU extension and the Fig. 11 decision-tree recommendation.

#include <iostream>

#include "bench_support/harness.h"
#include "common/table_printer.h"
#include "common/units.h"
#include "data/workloads.h"
#include "join/coprocess.h"

namespace pump {
namespace {

using join::CoProcessConfig;
using join::CoProcessModel;
using join::ExecutionStrategy;

// Paper Fig. 21a (G Tuples/s): rows = A, B, C; cols = CPU, Het, GPU+Het,
// GPU.
constexpr double kPaper[3][4] = {{0.52, 0.82, 2.92, 3.81},
                                 {0.50, 1.64, 4.85, 4.16},
                                 {0.54, 0.49, 0.86, 2.34}};

void Run() {
  bench::PrintBanner(
      std::cout, "Figure 21a",
      "Cooperative CPU+GPU join throughput (G Tuples/s) per strategy.");

  const hw::SystemProfile ibm = hw::Ac922Profile();
  const CoProcessModel model(&ibm);
  CoProcessConfig config;
  config.cpu = hw::kCpu0;
  config.gpu = hw::kGpu0;
  config.data_location = hw::kCpu0;

  const data::WorkloadSpec workloads[] = {data::WorkloadA(),
                                          data::WorkloadB(),
                                          data::WorkloadC()};
  const ExecutionStrategy strategies[] = {
      ExecutionStrategy::kCpuOnly, ExecutionStrategy::kHet,
      ExecutionStrategy::kGpuHet, ExecutionStrategy::kGpuOnly};

  TablePrinter table({"Workload", "Strategy", "G Tuples/s", "Paper"});
  for (int w = 0; w < 3; ++w) {
    for (int s = 0; s < 4; ++s) {
      Result<join::JoinTiming> timing =
          model.Estimate(strategies[s], config, workloads[w]);
      table.AddRow(
          {workloads[w].name, join::StrategyName(strategies[s]),
           timing.ok()
               ? TablePrinter::FormatDouble(
                     ToGTuplesPerSecond(timing.value().Throughput(
                         static_cast<double>(workloads[w].total_tuples()))),
                     2)
               : "n/a",
           TablePrinter::FormatDouble(kPaper[w][s], 2)});
    }
  }
  table.Print(std::cout);

  bench::PrintBanner(std::cout, "Figure 21b",
                     "Time per join phase, workload C (scaled to 10 GiB).");
  const data::WorkloadSpec c_scaled =
      data::ScaleToBytes(data::WorkloadC(), 10 * kGiB);
  TablePrinter phases({"Strategy", "Build s", "Broadcast s", "Probe s"});
  for (ExecutionStrategy strategy : strategies) {
    Result<join::JoinTiming> timing =
        model.Estimate(strategy, config, c_scaled);
    if (!timing.ok()) continue;
    phases.AddRow({join::StrategyName(strategy),
                   TablePrinter::FormatDouble(timing.value().build_s.seconds(), 2),
                   TablePrinter::FormatDouble(timing.value().extra_s.seconds(), 2),
                   TablePrinter::FormatDouble(timing.value().probe_s.seconds(), 2)});
  }
  phases.Print(std::cout);

  bench::PrintBanner(std::cout, "Sec. 6.3 extension",
                     "Multi-GPU interleaved hash table on the AC922 (no "
                     "direct GPU-GPU link; remote shares route over the "
                     "X-Bus).");
  CoProcessConfig multi = config;
  multi.extra_gpus = {hw::kGpu1};
  TablePrinter mg({"Workload", "1 GPU", "2 GPUs interleaved"});
  for (const data::WorkloadSpec& w : workloads) {
    const double one = ToGTuplesPerSecond(
        model.Estimate(ExecutionStrategy::kGpuOnly, config, w)
            .value()
            .Throughput(static_cast<double>(w.total_tuples())));
    const double two = ToGTuplesPerSecond(
        model.Estimate(ExecutionStrategy::kMultiGpu, multi, w)
            .value()
            .Throughput(static_cast<double>(w.total_tuples())));
    mg.AddRow({w.name, TablePrinter::FormatDouble(one, 2),
               TablePrinter::FormatDouble(two, 2)});
  }
  mg.Print(std::cout);

  std::cout << "\nFig. 11 decision tree recommends:";
  for (const data::WorkloadSpec& w : workloads) {
    std::cout << "  " << w.name << " -> "
              << join::StrategyName(model.Decide(config, w));
  }
  std::cout << "\n\nPaper shape: adding a GPU never hurts; GPU-only wins "
               "for A and C; the cooperative GPU+Het wins for the "
               "cache-resident workload B.\n";
}

}  // namespace
}  // namespace pump

int main() {
  pump::Run();
  return 0;
}
