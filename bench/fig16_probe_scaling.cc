// Regenerates Figure 16: probe-side scaling. Workload C with 16-byte
// tuples, |R| = 128M fixed, |S| from 128M to 8192M (1.9-122 GiB); base
// relations in CPU memory, hash table in GPU memory. Compares the CPU
// radix baseline (PRA), PCI-e 3.0, and NVLink 2.0.

#include <iostream>

#include "bench_support/harness.h"
#include "common/table_printer.h"
#include "common/units.h"
#include "data/workloads.h"
#include "join/cost_model.h"

namespace pump {
namespace {

using join::HashTablePlacement;
using join::NopaConfig;
using join::NopaJoinModel;
using join::RadixJoinModel;

void Run() {
  bench::PrintBanner(
      std::cout, "Figure 16",
      "Probe-side scaling: throughput (G Tuples/s) vs |S|; |R| = 128M "
      "16-byte tuples, hash table in GPU memory.");

  const hw::SystemProfile ibm = hw::Ac922Profile();
  const hw::SystemProfile intel = hw::XeonProfile();
  const NopaJoinModel nvlink_model(&ibm);
  const NopaJoinModel pcie_model(&intel);
  const RadixJoinModel radix_model(&ibm);

  TablePrinter table({"|S| (M tuples)", "S size", "CPU (PRA)", "PCI-e 3.0",
                      "NVLink 2.0", "NVLink/PCI-e"});
  for (std::uint64_t s_m : {128, 512, 1024, 2048, 4096, 6144, 8192}) {
    const data::WorkloadSpec w =
        data::WorkloadC16(128ull << 20, s_m << 20);
    const double total = static_cast<double>(w.total_tuples());

    const join::JoinTiming cpu = radix_model.Estimate(hw::kCpu0, w);

    NopaConfig nvlink;
    nvlink.device = hw::kGpu0;
    nvlink.r_location = hw::kCpu0;
    nvlink.s_location = hw::kCpu0;
    nvlink.hash_table = HashTablePlacement::Single(hw::kGpu0);
    const join::JoinTiming nv = nvlink_model.Estimate(nvlink, w).value();

    NopaConfig pcie = nvlink;
    pcie.method = transfer::TransferMethod::kZeroCopy;
    pcie.relation_memory = memory::MemoryKind::kPinned;
    const join::JoinTiming pc = pcie_model.Estimate(pcie, w).value();

    const double nv_tput = ToGTuplesPerSecond(nv.Throughput(total));
    const double pc_tput = ToGTuplesPerSecond(pc.Throughput(total));
    table.AddRow(
        {std::to_string(s_m),
         TablePrinter::FormatDouble(static_cast<double>(w.s_bytes()) / kGiB,
                                    1) +
             " GiB",
         TablePrinter::FormatDouble(
             ToGTuplesPerSecond(cpu.Throughput(total)), 2),
         TablePrinter::FormatDouble(pc_tput, 2),
         TablePrinter::FormatDouble(nv_tput, 2),
         TablePrinter::FormatDouble(nv_tput / pc_tput, 1) + "x"});
  }
  table.Print(std::cout);

  std::cout << "\nPaper shape: NVLink 3-6x faster than PCI-e and 3.2-7.3x\n"
               "faster than the CPU baseline; NVLink throughput improves\n"
               "with |S| (build amortizes) while PCI-e stays transfer-bound\n"
               "and flat, unable to beat the CPU.\n";
}

}  // namespace
}  // namespace pump

int main() {
  pump::Run();
  return 0;
}
