// Extension (Sec. 10): "future database research should consider fast
// interconnects". What-if sweep over interconnect generations: scale the
// GPU link's bandwidth/latency and find where the GPU join overtakes the
// CPU, where it saturates memory, and what an NVLink-4-class link would
// buy. Uses the full join model on synthesized topologies.

#include <iostream>

#include "bench_support/harness.h"
#include "common/table_printer.h"
#include "common/units.h"
#include "data/workloads.h"
#include "hw/system_profile.h"
#include "join/cost_model.h"

namespace pump {
namespace {

using join::HashTablePlacement;
using join::NopaConfig;
using join::NopaJoinModel;

// A hypothetical coherent link: NVLink 2.0's protocol with scaled
// bandwidth and latency.
hw::SystemProfile HypotheticalSystem(double bw_scale, double latency_scale) {
  hw::SystemProfile profile = hw::Ac922Profile();
  hw::Topology topo;
  const auto cpu0 = topo.AddDevice(hw::Power9(), hw::Power9Memory(),
                                   hw::Power9L3());
  const auto gpu0 =
      topo.AddDevice(hw::TeslaV100(), hw::V100Hbm2(), hw::V100L2());
  hw::LinkSpec link = hw::Nvlink2x3();
  link.name = "hypothetical coherent link";
  link.electrical_bw *= bw_scale;
  link.seq_bw *= bw_scale;
  link.duplex_bw *= bw_scale;
  link.random_access_rate *= bw_scale;
  link.hop_latency *= latency_scale;
  // Little's law on the link's fixed request window: higher latency
  // proportionally lowers the sustainable random-access rate.
  link.random_access_rate /= latency_scale;
  (void)topo.AddLink(cpu0, gpu0, link);
  profile.topology = std::move(topo);
  return profile;
}

void Run() {
  bench::PrintBanner(
      std::cout, "Extension: interconnect what-if sweep",
      "Workload A join throughput (G Tuples/s) as the coherent link "
      "scales from PCI-e-class to beyond-memory-class bandwidth.");

  // CPU reference on the real system.
  const hw::SystemProfile real = hw::Ac922Profile();
  const NopaJoinModel real_model(&real);
  NopaConfig cpu_config;
  cpu_config.device = hw::kCpu0;
  cpu_config.r_location = hw::kCpu0;
  cpu_config.s_location = hw::kCpu0;
  cpu_config.hash_table = HashTablePlacement::Single(hw::kCpu0);
  const data::WorkloadSpec w = data::WorkloadA();
  const double cpu_tput = ToGTuplesPerSecond(
      real_model.Estimate(cpu_config, w).value().Throughput(
          static_cast<double>(w.total_tuples())));

  TablePrinter table({"Link seq GiB/s", "HT in GPU mem", "HT in CPU mem",
                      "vs CPU (" + TablePrinter::FormatDouble(cpu_tput, 2) +
                          ")"});
  for (double bw_scale : {0.19, 0.5, 1.0, 2.0, 4.0, 8.0}) {
    const hw::SystemProfile profile = HypotheticalSystem(bw_scale, 1.0);
    const NopaJoinModel model(&profile);
    NopaConfig config;
    config.device = 1;  // The GPU in the synthesized two-device topology.
    config.r_location = 0;
    config.s_location = 0;

    config.hash_table = HashTablePlacement::Single(1);
    const double gpu_ht = ToGTuplesPerSecond(
        model.Estimate(config, w).value().Throughput(
            static_cast<double>(w.total_tuples())));
    config.hash_table = HashTablePlacement::Single(0);
    const double cpu_ht = ToGTuplesPerSecond(
        model.Estimate(config, w).value().Throughput(
            static_cast<double>(w.total_tuples())));

    table.AddRow({TablePrinter::FormatDouble(63.0 * bw_scale, 0),
                  TablePrinter::FormatDouble(gpu_ht, 2),
                  TablePrinter::FormatDouble(cpu_ht, 2),
                  TablePrinter::FormatDouble(gpu_ht / cpu_tput, 1) + "x"});
  }
  table.Print(std::cout);

  bench::PrintBanner(std::cout, "Latency sensitivity",
                     "Same link at 63 GiB/s with scaled hop latency; the "
                     "GPU hides it, out-of-core tables do not.");
  TablePrinter lat({"Hop latency ns", "HT in GPU mem", "HT in CPU mem"});
  for (double latency_scale : {0.5, 1.0, 2.0, 4.0}) {
    const hw::SystemProfile profile = HypotheticalSystem(1.0, latency_scale);
    const NopaJoinModel model(&profile);
    NopaConfig config;
    config.device = 1;
    config.r_location = 0;
    config.s_location = 0;
    config.hash_table = HashTablePlacement::Single(1);
    const double gpu_ht = ToGTuplesPerSecond(
        model.Estimate(config, w).value().Throughput(
            static_cast<double>(w.total_tuples())));
    config.hash_table = HashTablePlacement::Single(0);
    const double cpu_ht = ToGTuplesPerSecond(
        model.Estimate(config, w).value().Throughput(
            static_cast<double>(w.total_tuples())));
    lat.AddRow({TablePrinter::FormatDouble(366.0 * latency_scale, 0),
                TablePrinter::FormatDouble(gpu_ht, 2),
                TablePrinter::FormatDouble(cpu_ht, 2)});
  }
  lat.Print(std::cout);

  std::cout << "\nTakeaways: the in-GPU-table join crosses the CPU around\n"
               "PCI-e 4/5-class bandwidth and saturates once streaming S\n"
               "stops being the bottleneck; the out-of-core table tracks\n"
               "the link's random-access rate, so bandwidth growth without\n"
               "latency/MLP improvements helps it less (Sec. 8, insight 3).\n";
}

}  // namespace
}  // namespace pump

int main() {
  pump::Run();
  return 0;
}
