// Extension: whole-query planning with the engine layer. Runs the
// SSB-style queries functionally at host scale (correctness), then sweeps
// the modelled scale factor and prints which processor the Advisor picks
// on each system and the predicted runtimes — the Fig. 11 placement
// decision generalized to multi-join queries.

#include <iostream>

#include "bench_support/harness.h"
#include "common/table_printer.h"
#include "engine/advisor.h"
#include "engine/executor.h"
#include "engine/ssb.h"
#include "hw/system_profile.h"

namespace pump {
namespace {

using engine::Advisor;
using engine::PlanChoice;
using engine::Query;
using engine::QueryStats;
using engine::SsbDatabase;

void Run() {
  bench::PrintBanner(
      std::cout, "Extension: SSB-style query planning",
      "Engine executor (functional) + model-driven Advisor across scale "
      "factors.");

  const SsbDatabase db = SsbDatabase::Generate(500'000, 21);
  const Query q1 = engine::SsbQ1(db);
  const Query q2 = engine::SsbQ2(db);
  const engine::QueryResult r1 = engine::Executor::Run(q1, 2).value();
  const engine::QueryResult r2 = engine::Executor::Run(q2, 2).value();
  std::cout << "Functional: Q1 -> " << r1.rows << " rows, Q2 -> "
            << r2.rows << " rows (500k-row sample)\n\n";

  const hw::SystemProfile ibm = hw::Ac922Profile();
  const hw::SystemProfile intel = hw::XeonProfile();
  const Advisor ibm_advisor(&ibm);
  const Advisor intel_advisor(&intel);

  for (const auto& [name, query] :
       {std::pair{"Q1", &q1}, std::pair{"Q2", &q2}}) {
    std::cout << "-- " << name << " --\n";
    TablePrinter table({"Fact rows", "AC922 choice", "AC922 s",
                        "Xeon choice", "Xeon s", "NVLink speedup"});
    for (double scale : {120.0, 1200.0, 12000.0}) {
      const QueryStats stats = engine::StatsFromQuery(*query, scale);
      const PlanChoice ibm_plan =
          ibm_advisor.Recommend(stats, hw::kCpu0).value();
      const PlanChoice intel_plan =
          intel_advisor.Recommend(stats, hw::kCpu0).value();
      table.AddRow(
          {TablePrinter::FormatDouble(stats.fact_rows / 1e9, 2) + "G",
           ibm.topology.device(ibm_plan.device).name,
           TablePrinter::FormatDouble(ibm_plan.predicted_seconds.seconds(), 2),
           intel.topology.device(intel_plan.device).name,
           TablePrinter::FormatDouble(intel_plan.predicted_seconds.seconds(), 2),
           TablePrinter::FormatDouble(intel_plan.predicted_seconds /
                                          ibm_plan.predicted_seconds,
                                      1) +
               "x"});
    }
    table.Print(std::cout);
    std::cout << "\n";
  }
  std::cout << "The fast interconnect does not just accelerate one join —\n"
               "it moves the break-even point of entire star queries onto\n"
               "the GPU, at every scale the model sweeps.\n";
}

}  // namespace
}  // namespace pump

int main() {
  pump::Run();
  return 0;
}
