// Extension (builds on Secs. 5.3 + 7.2.8): skew-aware hybrid placement.
// The paper's hybrid hash table splits by address; when the optimizer
// knows the probe-key distribution, placing the *hottest* entries in GPU
// memory serves the Zipf mass from the fast part. This bench quantifies
// the win over the address split across skew levels and GPU budgets.

#include <iostream>

#include "bench_support/harness.h"
#include "common/table_printer.h"
#include "common/units.h"
#include "data/workloads.h"
#include "join/cost_model.h"

namespace pump {
namespace {

using join::HashTablePlacement;
using join::NopaConfig;
using join::NopaJoinModel;

void Run() {
  bench::PrintBanner(
      std::cout, "Extension: skew-aware hybrid placement",
      "Workload A with Zipf probes; address-split vs hottest-first "
      "placement (G Tuples/s).");

  const hw::SystemProfile ibm = hw::Ac922Profile();
  const NopaJoinModel model(&ibm);

  for (double byte_fraction : {0.1, 0.25, 0.5}) {
    std::cout << "-- " << TablePrinter::FormatDouble(byte_fraction * 100, 0)
              << "% of the table in GPU memory --\n";
    TablePrinter table(
        {"Zipf z", "Address split", "Skew-aware", "Improvement"});
    for (double z : {0.0, 0.5, 0.75, 1.0, 1.25, 1.5}) {
      data::WorkloadSpec w = data::WorkloadA();
      w.zipf_exponent = z;

      auto run = [&](const HashTablePlacement& placement) {
        NopaConfig config;
        config.device = hw::kGpu0;
        config.r_location = hw::kCpu0;
        config.s_location = hw::kCpu0;
        config.hash_table = placement;
        return ToGTuplesPerSecond(
            model.Estimate(config, w).value().Throughput(
                static_cast<double>(w.total_tuples())));
      };
      const double plain = run(
          HashTablePlacement::Hybrid(hw::kGpu0, hw::kCpu0, byte_fraction));
      const double aware = run(HashTablePlacement::SkewAware(
          hw::kGpu0, hw::kCpu0, byte_fraction, w.r_tuples, z));
      table.AddRow({TablePrinter::FormatDouble(z, 2),
                    TablePrinter::FormatDouble(plain, 2),
                    TablePrinter::FormatDouble(aware, 2),
                    TablePrinter::FormatDouble(aware / plain, 2) + "x"});
    }
    table.Print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Under uniform keys both placements coincide; with skew the\n"
               "hottest-first placement approaches in-GPU-table throughput\n"
               "using a tenth of the memory budget — a cheap optimizer win\n"
               "on top of the paper's design.\n";
}

}  // namespace
}  // namespace pump

int main() {
  pump::Run();
  return 0;
}
