// Transfer microbenchmarks: (a) functional chunked-copy executor rates on
// the host; (b) the chunk-size ablation of the modelled pipelines (the
// trade the paper's push-based methods tune empirically, Sec. 4.1).

#include <cstdint>

#include "benchmark/benchmark.h"
#include "hw/system_profile.h"
#include "memory/buffer.h"
#include "memory/unified.h"
#include "transfer/executor.h"
#include "transfer/transfer_model.h"

namespace pump {
namespace {

using memory::Buffer;
using memory::Extent;
using memory::MemoryKind;
using transfer::TransferMethod;

constexpr std::uint64_t kBytes = 32ull << 20;

void BM_FunctionalCopy(benchmark::State& state) {
  const auto method = static_cast<TransferMethod>(state.range(0));
  const std::uint64_t chunk = 1ull << state.range(1);
  Buffer src(kBytes, transfer::TraitsOf(method).required_memory,
             {Extent{hw::kCpu0, kBytes}});
  Buffer dst(kBytes, MemoryKind::kDevice, {Extent{hw::kGpu0, kBytes}});
  memory::UnifiedRegion region(kBytes, 64 * 1024, hw::kCpu0);
  for (auto _ : state) {
    auto stats = transfer::ExecuteTransfer(method, src, &dst, hw::kGpu0,
                                           chunk, 64 * 1024, &region);
    benchmark::DoNotOptimize(stats);
  }
  state.SetBytesProcessed(state.iterations() * kBytes);
}
BENCHMARK(BM_FunctionalCopy)
    ->Args({static_cast<int>(TransferMethod::kPinnedCopy), 20})
    ->Args({static_cast<int>(TransferMethod::kPinnedCopy), 23})
    ->Args({static_cast<int>(TransferMethod::kStagedCopy), 20})
    ->Args({static_cast<int>(TransferMethod::kStagedCopy), 23});

void BM_ModelChunkSweep(benchmark::State& state) {
  // Modelled effective bandwidth of the Pinned Copy pipeline as a function
  // of chunk size: small chunks pay launch overhead, huge chunks lose
  // pipelining against the compute stage.
  const hw::SystemProfile profile = hw::Ac922Profile();
  const transfer::TransferModel model(&profile);
  const Bytes chunk = Bytes(static_cast<double>(1ull << state.range(0)));
  const Bytes total = Bytes::GiB(32);
  double bw = 0.0;
  for (auto _ : state) {
    auto time = model.TransferTime(TransferMethod::kPinnedCopy, hw::kGpu0,
                                   hw::kCpu0, total, chunk);
    bw = (total / time.value()).gib_per_second();
    benchmark::DoNotOptimize(bw);
  }
  state.counters["model_GiBps"] = bw;
}
BENCHMARK(BM_ModelChunkSweep)->Arg(16)->Arg(20)->Arg(23)->Arg(26)->Arg(30);

}  // namespace
}  // namespace pump
