// Regenerates Figure 12: no-partitioning hash join throughput on workload A
// (2 GiB x 32 GiB) for all eight transfer methods, on PCI-e 3.0 and
// NVLink 2.0, with the hash table in GPU memory.

#include <iostream>

#include "bench_support/harness.h"
#include "common/table_printer.h"
#include "common/units.h"
#include "data/workloads.h"
#include "join/cost_model.h"
#include "transfer/method.h"

namespace pump {
namespace {

using join::HashTablePlacement;
using join::NopaConfig;
using join::NopaJoinModel;
using transfer::TransferMethod;

// Paper-reported throughputs (G Tuples/s), Fig. 12, in kAllTransferMethods
// order; < 0 marks "Unsupported".
constexpr double kPaperPcie[] = {0.25, 0.73, 0.26, 0.74,
                                 0.54, 0.25, 0.77, -1.0};
constexpr double kPaperNvlink[] = {0.67, 2.15, 2.36, 3.42,
                                   0.17, 0.16, 3.81, 3.83};

void Run() {
  bench::PrintBanner(
      std::cout, "Figure 12",
      "Join throughput (G Tuples/s) of every transfer method, workload A, "
      "hash table in GPU memory.");

  const hw::SystemProfile ibm = hw::Ac922Profile();
  const hw::SystemProfile intel = hw::XeonProfile();
  const NopaJoinModel ibm_model(&ibm);
  const NopaJoinModel intel_model(&intel);
  const data::WorkloadSpec workload = data::WorkloadA();

  auto estimate = [&](const NopaJoinModel& model, TransferMethod method) {
    NopaConfig config;
    config.device = hw::kGpu0;
    config.r_location = hw::kCpu0;
    config.s_location = hw::kCpu0;
    config.hash_table = HashTablePlacement::Single(hw::kGpu0);
    config.method = method;
    // The benchmark stores the relations in whatever memory the method
    // requires (Table 1).
    config.relation_memory = transfer::TraitsOf(method).required_memory;
    Result<join::JoinTiming> timing = model.Estimate(config, workload);
    if (!timing.ok()) return std::string("Unsupported");
    return TablePrinter::FormatDouble(
        ToGTuplesPerSecond(timing.value().Throughput(
            static_cast<double>(workload.total_tuples()))),
        2);
  };

  TablePrinter table({"Method", "PCI-e 3.0", "NVLink 2.0", "Paper PCI-e",
                      "Paper NVLink"});
  int i = 0;
  for (TransferMethod method : transfer::kAllTransferMethods) {
    const double paper_pcie = kPaperPcie[i];
    const double paper_nvlink = kPaperNvlink[i];
    ++i;
    table.AddRow(
        {transfer::TransferMethodToString(method),
         estimate(intel_model, method), estimate(ibm_model, method),
         paper_pcie < 0 ? "Unsupported"
                        : TablePrinter::FormatDouble(paper_pcie, 2),
         TablePrinter::FormatDouble(paper_nvlink, 2)});
  }
  table.Print(std::cout);

  std::cout << "\nShape checks: pinning is required for peak PCI-e "
               "bandwidth; Coherence ~ Zero-Copy lead on NVLink; the "
               "POWER9 Unified Memory driver path underperforms x86-64 "
               "(footnote 1).\n";
}

}  // namespace
}  // namespace pump

int main() {
  pump::Run();
  return 0;
}
