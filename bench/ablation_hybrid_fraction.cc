// Ablation (Sec. 5.3): sweep the hybrid hash table's GPU fraction from
// 0% to 100% for several table sizes and compare the full model against
// the paper's simple linear throughput estimate
// J_tput = A_GPU * G_tput + (1 - A_GPU) * C_tput.

#include <iostream>

#include "bench_support/harness.h"
#include "common/table_printer.h"
#include "common/units.h"
#include "data/workloads.h"
#include "join/cost_model.h"

namespace pump {
namespace {

using join::HashTablePlacement;
using join::NopaConfig;
using join::NopaJoinModel;

void Run() {
  bench::PrintBanner(
      std::cout, "Ablation: hybrid hash table GPU fraction",
      "Throughput (G Tuples/s) vs fraction of the table in GPU memory, "
      "and the paper's linear interpolation J = A*G + (1-A)*C.");

  hw::SystemProfile ibm = hw::Ac922Profile();
  const NopaJoinModel model(&ibm);

  for (const std::uint64_t m : {1024ull, 1536ull, 2048ull}) {
    const data::WorkloadSpec w = data::WorkloadC16(m << 20, m << 20);
    const double total = static_cast<double>(w.total_tuples());
    std::cout << "-- hash table "
              << TablePrinter::FormatDouble(
                     static_cast<double>(w.hash_table_bytes()) / kGiB, 0)
              << " GiB --\n";

    auto throughput = [&](double fraction) {
      NopaConfig config;
      config.device = hw::kGpu0;
      config.r_location = hw::kCpu0;
      config.s_location = hw::kCpu0;
      config.hash_table =
          HashTablePlacement::Hybrid(hw::kGpu0, hw::kCpu0, fraction);
      return ToGTuplesPerSecond(
          model.Estimate(config, w).value().Throughput(total));
    };
    const double g_tput = throughput(1.0);
    const double c_tput = throughput(0.0);

    TablePrinter table({"GPU fraction", "Model", "Paper linear estimate"});
    for (double fraction : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
      table.AddRow(
          {TablePrinter::FormatDouble(fraction * 100, 0) + "%",
           TablePrinter::FormatDouble(throughput(fraction), 2),
           TablePrinter::FormatDouble(
               fraction * g_tput + (1.0 - fraction) * c_tput, 2)});
    }
    table.Print(std::cout);
    std::cout << "\n";
  }
  std::cout << "The full model is sub-linear in the fraction (the slow\n"
               "CPU-resident accesses dominate the harmonic mean), which\n"
               "is why throughput 'degrades gracefully' rather than\n"
               "linearly as the table outgrows GPU memory (Sec. 5.3).\n";
}

}  // namespace
}  // namespace pump

int main() {
  pump::Run();
  return 0;
}
