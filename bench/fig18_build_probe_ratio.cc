// Regenerates Figure 18: the effect of the build-to-probe ratio. Workload
// C with 16-byte tuples, |R| fixed at 128M, |S| from 1:1 to 1:16; base
// relations in CPU memory, hash table in GPU memory, NVLink 2.0.
// Prints both throughput (Fig. 18a) and the phase time breakdown (18b).

#include <iostream>

#include "bench_support/harness.h"
#include "common/table_printer.h"
#include "common/units.h"
#include "data/workloads.h"
#include "join/cost_model.h"

namespace pump {
namespace {

using join::HashTablePlacement;
using join::NopaConfig;
using join::NopaJoinModel;

// Paper Fig. 18a throughputs and 18b build-share percentages.
constexpr double kPaperTput[] = {2.41, 2.81, 3.24, 3.60, 3.85};
constexpr double kPaperBuildShare[] = {71, 55, 38, 24, 13};

void Run() {
  bench::PrintBanner(
      std::cout, "Figure 18",
      "Build-to-probe ratios 1:1 .. 1:16 on NVLink 2.0: throughput and "
      "per-phase time breakdown.");

  const hw::SystemProfile ibm = hw::Ac922Profile();
  const NopaJoinModel model(&ibm);

  TablePrinter table({"Ratio", "G Tuples/s", "Paper", "Build %", "Probe %",
                      "Paper build %"});
  int i = 0;
  for (int ratio : {1, 2, 4, 8, 16}) {
    const data::WorkloadSpec w =
        data::WorkloadC16(128ull << 20, (128ull << 20) * ratio);
    NopaConfig config;
    config.device = hw::kGpu0;
    config.r_location = hw::kCpu0;
    config.s_location = hw::kCpu0;
    config.hash_table = HashTablePlacement::Single(hw::kGpu0);
    const join::JoinTiming timing = model.Estimate(config, w).value();
    const double build_pct =
        100.0 * timing.build_s / timing.total_s();
    table.AddRow(
        {"1:" + std::to_string(ratio),
         TablePrinter::FormatDouble(
             ToGTuplesPerSecond(timing.Throughput(
                 static_cast<double>(w.total_tuples()))),
             2),
         TablePrinter::FormatDouble(kPaperTput[i], 2),
         TablePrinter::FormatDouble(build_pct, 0),
         TablePrinter::FormatDouble(100.0 - build_pct, 0),
         TablePrinter::FormatDouble(kPaperBuildShare[i], 0)});
    ++i;
  }
  table.Print(std::cout);

  std::cout << "\nPaper shape: at 1:1 the build phase dominates (it is\n"
               "~45% slower per tuple than the probe); larger probe sides\n"
               "amortize it and throughput climbs toward the transfer "
               "bound.\n";
}

}  // namespace
}  // namespace pump

int main() {
  pump::Run();
  return 0;
}
