// Functional end-to-end join microbenchmarks on the host: NOPA vs radix
// at host scale, plus the radix-bits ablation (the paper tunes 12 bits;
// on a host-scale input the optimum differs — the sweep shows the trade).

#include <cstdint>

#include "benchmark/benchmark.h"
#include "data/generator.h"
#include "join/nopa.h"
#include "join/radix.h"

namespace pump {
namespace {

constexpr std::size_t kInner = 1 << 18;
constexpr std::size_t kOuter = 1 << 21;

const data::Relation64& Inner() {
  static const auto* relation = new data::Relation64(
      data::GenerateInner<std::int64_t, std::int64_t>(kInner, 7));
  return *relation;
}

const data::Relation64& Outer() {
  static const auto* relation = new data::Relation64(
      data::GenerateOuterUniform<std::int64_t, std::int64_t>(kOuter, kInner,
                                                             11));
  return *relation;
}

void BM_NopaJoin(benchmark::State& state) {
  const std::size_t workers = state.range(0);
  for (auto _ : state) {
    auto result = join::RunNopaJoin(Inner(), Outer(), workers);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * (kInner + kOuter));
}
BENCHMARK(BM_NopaJoin)->Arg(1)->Arg(2)->Arg(4);

void BM_RadixJoin(benchmark::State& state) {
  join::RadixJoinOptions options;
  options.radix_bits = static_cast<int>(state.range(0));
  options.workers = 2;
  for (auto _ : state) {
    auto result = join::RunRadixJoin(Inner(), Outer(), options);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * (kInner + kOuter));
}
BENCHMARK(BM_RadixJoin)->Arg(4)->Arg(8)->Arg(12);

void BM_BuildPhaseOnly(benchmark::State& state) {
  for (auto _ : state) {
    hash::PerfectHashTable<std::int64_t, std::int64_t> table(kInner);
    auto status = join::BuildPhase(&table, Inner(), 1);
    benchmark::DoNotOptimize(status);
  }
  state.SetItemsProcessed(state.iterations() * kInner);
}
BENCHMARK(BM_BuildPhaseOnly);

void BM_ProbePhaseOnly(benchmark::State& state) {
  hash::PerfectHashTable<std::int64_t, std::int64_t> table(kInner);
  (void)join::BuildPhase(&table, Inner(), 1);
  for (auto _ : state) {
    auto result = join::ProbePhase(table, Outer(), 1);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * kOuter);
}
BENCHMARK(BM_ProbePhaseOnly);

void BM_ZipfProbe(benchmark::State& state) {
  // Skewed probes are faster on the host too (cache hits), the functional
  // analogue of Fig. 19.
  const double z = static_cast<double>(state.range(0)) / 100.0;
  const auto outer = data::GenerateOuterZipf<std::int64_t, std::int64_t>(
      kOuter, kInner, z, 13);
  hash::PerfectHashTable<std::int64_t, std::int64_t> table(kInner);
  (void)join::BuildPhase(&table, Inner(), 1);
  for (auto _ : state) {
    auto result = join::ProbePhase(table, outer, 1);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * kOuter);
}
BENCHMARK(BM_ZipfProbe)->Arg(0)->Arg(100)->Arg(175);

}  // namespace
}  // namespace pump
