// Functional end-to-end join microbenchmarks on the host: NOPA vs radix
// at host scale, plus the radix-bits ablation (the paper tunes 12 bits;
// on a host-scale input the optimum differs — the sweep shows the trade)
// and the scatter-vs-SWWC partition records the write-combining work is
// judged by.
//
// Two harnesses share this binary. The google-benchmark suite keeps the
// historical join numbers. A hand-rolled section runs first and emits
// machine-readable `radix_partition_ms` records (direct scatter under a
// forced-scalar dispatch scope vs the software write-combining scatter
// under auto dispatch) plus a full-join cross-dispatch check via
// --json=<path> for scripts/bench_trajectory.sh. --records-only skips
// the google-benchmark suite; --quick shrinks the record sizes.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_support/harness.h"
#include "bench_support/json_writer.h"
#include "benchmark/benchmark.h"
#include "common/cpu_features.h"
#include "common/statistics.h"
#include "data/generator.h"
#include "join/nopa.h"
#include "join/radix.h"

namespace pump {
namespace {

constexpr std::size_t kInner = 1 << 18;
constexpr std::size_t kOuter = 1 << 21;

const data::Relation64& Inner() {
  static const auto* relation = new data::Relation64(
      data::GenerateInner<std::int64_t, std::int64_t>(kInner, 7));
  return *relation;
}

const data::Relation64& Outer() {
  static const auto* relation = new data::Relation64(
      data::GenerateOuterUniform<std::int64_t, std::int64_t>(kOuter, kInner,
                                                             11));
  return *relation;
}

void BM_NopaJoin(benchmark::State& state) {
  const std::size_t workers = state.range(0);
  for (auto _ : state) {
    auto result = join::RunNopaJoin(Inner(), Outer(), workers);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * (kInner + kOuter));
}
BENCHMARK(BM_NopaJoin)->Arg(1)->Arg(2)->Arg(4);

void BM_RadixJoin(benchmark::State& state) {
  join::RadixJoinOptions options;
  options.radix_bits = static_cast<int>(state.range(0));
  options.workers = 2;
  for (auto _ : state) {
    auto result = join::RunRadixJoin(Inner(), Outer(), options);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * (kInner + kOuter));
}
BENCHMARK(BM_RadixJoin)->Arg(4)->Arg(8)->Arg(12);

void BM_BuildPhaseOnly(benchmark::State& state) {
  for (auto _ : state) {
    hash::PerfectHashTable<std::int64_t, std::int64_t> table(kInner);
    auto status = join::BuildPhase(&table, Inner(), 1);
    benchmark::DoNotOptimize(status);
  }
  state.SetItemsProcessed(state.iterations() * kInner);
}
BENCHMARK(BM_BuildPhaseOnly);

void BM_ProbePhaseOnly(benchmark::State& state) {
  hash::PerfectHashTable<std::int64_t, std::int64_t> table(kInner);
  (void)join::BuildPhase(&table, Inner(), 1);
  for (auto _ : state) {
    auto result = join::ProbePhase(table, Outer(), 1);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * kOuter);
}
BENCHMARK(BM_ProbePhaseOnly);

void BM_ZipfProbe(benchmark::State& state) {
  // Skewed probes are faster on the host too (cache hits), the functional
  // analogue of Fig. 19.
  const double z = static_cast<double>(state.range(0)) / 100.0;
  const auto outer = data::GenerateOuterZipf<std::int64_t, std::int64_t>(
      kOuter, kInner, z, 13);
  hash::PerfectHashTable<std::int64_t, std::int64_t> table(kInner);
  (void)join::BuildPhase(&table, Inner(), 1);
  for (auto _ : state) {
    auto result = join::ProbePhase(table, outer, 1);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * kOuter);
}
BENCHMARK(BM_ZipfProbe)->Arg(0)->Arg(100)->Arg(175);

// --- Hand-rolled scatter-vs-SWWC partition records ------------------------

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

double Mean(const std::vector<double>& samples) {
  RunningStats stats;
  for (double sample : samples) stats.Add(sample);
  return stats.mean();
}

/// True iff the two partition results are byte-for-byte identical —
/// offsets, keys and payloads. SWWC only changes how stores reach
/// memory, never which slot a tuple lands in, so any difference is a
/// correctness bug.
bool SamePartitioning(
    const join::Partitioned<std::int64_t, std::int64_t>& a,
    const join::Partitioned<std::int64_t, std::int64_t>& b) {
  return a.offsets == b.offsets &&
         std::equal(a.keys.begin(), a.keys.end(), b.keys.begin(),
                    b.keys.end()) &&
         std::equal(a.payloads.begin(), a.payloads.end(), b.payloads.begin(),
                    b.payloads.end());
}

void RecordPartitionVariants(bench::JsonWriter* json, bool quick) {
  const std::size_t rows = quick ? (1 << 15) : (1 << 23);
  const int radix_bits = quick ? 8 : 12;
  const int runs = quick ? 3 : 15;
  const std::size_t workers = 2;

  bench::PrintBanner(
      std::cout, "micro_join/radix_partition_dispatch",
      "ms per partition pass over " + std::to_string(rows) + " tuples, " +
          std::to_string(std::size_t{1} << radix_bits) +
          " partitions: direct scatter (forced-scalar dispatch) vs "
          "software write-combining (auto dispatch)");

  const auto input = data::GenerateOuterUniform<std::int64_t, std::int64_t>(
      rows, rows, 17);

  join::Partitioned<std::int64_t, std::int64_t> reference;
  std::vector<double> scatter;
  {
    common::ScopedForceScalar scalar_dispatch;
    scatter = bench::RepeatSamples(runs, bench::kDefaultWarmup, [&] {
      const auto start = Clock::now();
      reference = join::RadixPartition(input, radix_bits, workers);
      return SecondsSince(start) * 1e3;
    });
  }
  join::Partitioned<std::int64_t, std::int64_t> combined;
  const std::vector<double> swwc =
      bench::RepeatSamples(runs, bench::kDefaultWarmup, [&] {
        const auto start = Clock::now();
        combined = join::RadixPartition(input, radix_bits, workers);
        return SecondsSince(start) * 1e3;
      });
  if (!SamePartitioning(reference, combined)) {
    std::cerr << "FATAL: scatter and SWWC partition passes disagree\n";
    std::exit(1);
  }

  // The whole join must also be bit-identical across dispatch modes:
  // partitioning AND the per-partition probe both dispatch.
  join::RadixJoinOptions options;
  options.radix_bits = radix_bits;
  options.workers = workers;
  const auto auto_join = join::RunRadixJoin(Inner(), Outer(), options);
  Result<join::JoinAggregate> scalar_join = [&] {
    common::ScopedForceScalar scalar_dispatch;
    return join::RunRadixJoin(Inner(), Outer(), options);
  }();
  if (!auto_join.ok() || !scalar_join.ok() ||
      auto_join.value().matches != scalar_join.value().matches ||
      auto_join.value().payload_sum != scalar_join.value().payload_sum) {
    std::cerr << "FATAL: radix join differs across dispatch modes\n";
    std::exit(1);
  }

  const std::string config = "rows=" + std::to_string(rows) +
                             " radix_bits=" + std::to_string(radix_bits) +
                             " workers=" + std::to_string(workers);
  const std::string dispatch =
      common::SimdDispatchName(common::ActiveSimdDispatch());
  const double scatter_mean = Mean(scatter);
  const double swwc_mean = Mean(swwc);
  const double speedup = swwc_mean > 0.0 ? scatter_mean / swwc_mean : 0.0;
  std::cout << "  " << config << "\n"
            << "    scatter:         " << scatter_mean << " ms/pass\n"
            << "    swwc (" << dispatch << "): " << swwc_mean << " ms/pass";
  std::printf("  (%.2fx over scatter)\n", speedup);
  json->RecordSamples("radix_partition_ms", "scatter " + config, scatter);
  json->RecordSamples("radix_partition_ms", "swwc " + config, swwc);
  json->Record("radix_partition_swwc_speedup",
               "dispatch=" + dispatch + " " + config, speedup, 0.0, runs);
}

}  // namespace
}  // namespace pump

int main(int argc, char** argv) {
  pump::bench::JsonWriter json =
      pump::bench::JsonWriter::FromArgs(&argc, argv);
  bool quick = false;
  bool records_only = false;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--records-only") {
      records_only = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;

  pump::RecordPartitionVariants(&json, quick);
  if (!json.Write()) {
    std::cerr << "failed to write " << json.path() << "\n";
    return 1;
  }
  if (json.active()) {
    std::cout << "\nwrote " << json.records().size() << " records to "
              << json.path() << "\n";
  }
  if (records_only) return 0;

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
