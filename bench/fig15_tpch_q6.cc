// Regenerates Figure 15: TPC-H query 6 scaling from SF 100 to 1000 on the
// POWER9 CPU, the GPU over NVLink 2.0, and the GPU over PCI-e 3.0, in
// branching and predicated variants. A functional host-scale run validates
// that both variants compute identical results.

#include <iostream>

#include "bench_support/harness.h"
#include "common/table_printer.h"
#include "data/tpch.h"
#include "ops/q6.h"
#include "ops/q6_model.h"

namespace pump {
namespace {

using ops::Q6Model;
using ops::Q6Variant;
using transfer::TransferMethod;

void Run() {
  bench::PrintBanner(
      std::cout, "Figure 15",
      "TPC-H Q6 throughput (G rows/s) vs scale factor; branching vs "
      "predication on CPU, NVLink 2.0, PCI-e 3.0.");

  const hw::SystemProfile ibm = hw::Ac922Profile();
  const hw::SystemProfile intel = hw::XeonProfile();
  const Q6Model ibm_model(&ibm);
  const Q6Model intel_model(&intel);

  TablePrinter table({"SF", "CPU branch", "CPU pred", "NVLink branch",
                      "NVLink pred", "PCI-e branch", "PCI-e pred"});
  for (int sf : {100, 250, 500, 750, 1000}) {
    const double rows = static_cast<double>(data::kLineitemRowsPerSf) * sf;
    auto cell = [&](const Q6Model& model, hw::DeviceId device,
                    TransferMethod method, Q6Variant variant) {
      Result<ops::Q6Timing> timing =
          model.Estimate(device, hw::kCpu0, method, variant, rows);
      if (!timing.ok()) return std::string("n/a");
      return TablePrinter::FormatDouble(
          timing.value().RowsPerSecond().giga_per_second(), 2);
    };
    table.AddRow(
        {std::to_string(sf),
         cell(ibm_model, hw::kCpu0, TransferMethod::kCoherence,
              Q6Variant::kBranching),
         cell(ibm_model, hw::kCpu0, TransferMethod::kCoherence,
              Q6Variant::kPredicated),
         cell(ibm_model, hw::kGpu0, TransferMethod::kCoherence,
              Q6Variant::kBranching),
         cell(ibm_model, hw::kGpu0, TransferMethod::kCoherence,
              Q6Variant::kPredicated),
         cell(intel_model, hw::kGpu0, TransferMethod::kZeroCopy,
              Q6Variant::kBranching),
         cell(intel_model, hw::kGpu0, TransferMethod::kZeroCopy,
              Q6Variant::kPredicated)});
  }
  table.Print(std::cout);
  std::cout << "\nPaper shape: CPU fastest (up to 67% over NVLink); "
               "NVLink up to 9.8x over PCI-e; branching beats predication "
               "on the GPU with NVLink (skips transfers at 1.3-2% "
               "selectivity) but not on PCI-e.\n";

  // Functional validation at host scale.
  data::LineitemQ6 lineitem = data::GenerateLineitemQ6(2'000'000, 97);
  data::ClusterByShipdate(&lineitem);
  const ops::Q6Result branching = ops::RunQ6BranchingParallel(lineitem, 2);
  const ops::Q6Result predicated = ops::RunQ6PredicatedParallel(lineitem, 2);
  std::cout << "\nFunctional check (2M rows): branching revenue = "
            << branching.revenue << ", predicated revenue = "
            << predicated.revenue << ", qualifying rows = "
            << branching.qualifying_rows << " ("
            << TablePrinter::FormatDouble(
                   100.0 * static_cast<double>(branching.qualifying_rows) /
                       static_cast<double>(lineitem.size()),
                   2)
            << "% selectivity), variants agree: "
            << (branching == predicated ? "yes" : "NO") << "\n";
}

}  // namespace
}  // namespace pump

int main() {
  pump::Run();
  return 0;
}
