// Morsel-dispatch microbenchmarks: dispatcher claim throughput and the
// GPU batch-size ablation of Sec. 6.1 (batching amortizes dispatch
// latency; the paper tunes the batch size empirically).

#include <atomic>

#include "benchmark/benchmark.h"
#include "exec/het_scheduler.h"
#include "exec/morsel.h"

namespace pump {
namespace {

void BM_DispatcherClaim(benchmark::State& state) {
  constexpr std::size_t kTotal = 10'000'000;
  for (auto _ : state) {
    exec::MorselDispatcher dispatcher(kTotal, 1000);
    std::size_t claims = 0;
    while (dispatcher.Next()) ++claims;
    benchmark::DoNotOptimize(claims);
  }
  state.SetItemsProcessed(state.iterations() * (kTotal / 1000));
}
BENCHMARK(BM_DispatcherClaim);

void BM_BatchSizeAblation(benchmark::State& state) {
  // Emulate a fixed per-dispatch latency (kernel launch) plus linear work:
  // larger batches amortize the launch but coarsen load balancing.
  const std::size_t batch_morsels = state.range(0);
  constexpr std::size_t kTotal = 2'000'000;
  std::atomic<std::uint64_t> sink{0};
  for (auto _ : state) {
    auto work = [&sink](std::size_t begin, std::size_t end) {
      // "Launch" cost: a few hundred wasted iterations per dispatch.
      std::uint64_t x = 0;
      for (int i = 0; i < 400; ++i) x += i;
      x += end - begin;
      sink.fetch_add(x, std::memory_order_relaxed);
    };
    std::vector<exec::ProcessorGroup> groups;
    groups.push_back({"GPU", 1, batch_morsels, work});
    groups.push_back({"CPU", 2, 1, work});
    auto stats = exec::RunHeterogeneous(kTotal, 10'000, std::move(groups));
    benchmark::DoNotOptimize(stats);
  }
  state.SetItemsProcessed(state.iterations() * kTotal);
}
BENCHMARK(BM_BatchSizeAblation)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

}  // namespace
}  // namespace pump
