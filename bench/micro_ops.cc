// Operator microbenchmarks on the host: scans, group-by aggregation,
// Bloom-filter probes, and the multi-way star join.

#include "benchmark/benchmark.h"
#include "common/rng.h"
#include "data/star.h"
#include "data/tpch.h"
#include "hash/bloom.h"
#include "index/btree.h"
#include "join/star.h"
#include "ops/aggregate.h"
#include "ops/q6.h"
#include "ops/scan.h"

namespace pump {
namespace {

const data::LineitemQ6& Lineitem() {
  static const auto* table =
      new data::LineitemQ6(data::GenerateLineitemQ6(1 << 21, 3));
  return *table;
}

void BM_ScanColumn(benchmark::State& state) {
  for (auto _ : state) {
    auto selection = ops::ScanColumn(Lineitem().shipdate,
                                     ops::CompareOp::kGe, data::kQ6DateLo);
    benchmark::DoNotOptimize(selection);
  }
  state.SetItemsProcessed(state.iterations() * Lineitem().size());
}
BENCHMARK(BM_ScanColumn);

void BM_Q6Branching(benchmark::State& state) {
  for (auto _ : state) {
    auto result = ops::RunQ6Branching(Lineitem());
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * Lineitem().size());
}
BENCHMARK(BM_Q6Branching);

void BM_Q6Predicated(benchmark::State& state) {
  for (auto _ : state) {
    auto result = ops::RunQ6Predicated(Lineitem());
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * Lineitem().size());
}
BENCHMARK(BM_Q6Predicated);

void BM_DenseGroupBy(benchmark::State& state) {
  const std::size_t groups = state.range(0);
  constexpr std::size_t kRows = 1 << 20;
  std::vector<std::int64_t> keys(kRows), values(kRows);
  for (std::size_t i = 0; i < kRows; ++i) {
    keys[i] = static_cast<std::int64_t>((i * 2654435761u) % groups);
    values[i] = static_cast<std::int64_t>(i);
  }
  for (auto _ : state) {
    ops::DenseGroupBy agg(groups);
    benchmark::DoNotOptimize(agg.AccumulateColumns(keys, values, 1));
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}
BENCHMARK(BM_DenseGroupBy)->Arg(64)->Arg(1 << 12)->Arg(1 << 18);

void BM_BloomProbe(benchmark::State& state) {
  constexpr std::size_t kKeys = 1 << 20;
  hash::BlockedBloomFilter<std::int64_t> filter(kKeys);
  for (std::int64_t key = 0; key < static_cast<std::int64_t>(kKeys);
       ++key) {
    filter.Insert(key * 3);
  }
  for (auto _ : state) {
    std::uint64_t hits = 0;
    for (std::int64_t key = 0; key < (1 << 20); ++key) {
      hits += filter.MayContain(key);
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * (1 << 20));
}
BENCHMARK(BM_BloomProbe);

void BM_StarJoinProbe(benchmark::State& state) {
  const std::size_t dims = state.range(0);
  static const auto* schema = [] {
    return new data::StarSchema(data::GenerateStarSchema(
        {1 << 14, 1 << 14, 1 << 14, 1 << 14}, 1 << 19, 5));
  }();
  data::StarSchema view = *schema;
  view.dimensions.resize(dims);
  view.fact_keys.resize(dims);
  auto join = join::StarJoin::Build(view);
  for (auto _ : state) {
    auto result = join.value().Probe(view, 1);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * view.fact_rows() * dims);
}
BENCHMARK(BM_StarJoinProbe)->Arg(1)->Arg(2)->Arg(4);

void BM_BTreeLookup(benchmark::State& state) {
  constexpr std::size_t kKeys = 1 << 20;
  std::vector<std::int64_t> keys(kKeys), values(kKeys);
  for (std::size_t i = 0; i < kKeys; ++i) {
    keys[i] = static_cast<std::int64_t>(i);
    values[i] = static_cast<std::int64_t>(i) * 3;
  }
  const auto tree = index::BPlusTree<std::int64_t, std::int64_t>::BulkLoad(
                        std::move(keys), std::move(values))
                        .value();
  Rng rng(7);
  std::vector<std::int64_t> probes(1 << 18);
  for (auto& p : probes) {
    p = static_cast<std::int64_t>(rng.NextBounded(kKeys));
  }
  for (auto _ : state) {
    std::int64_t sum = 0;
    for (std::int64_t p : probes) {
      std::int64_t v;
      if (tree.Lookup(p, &v)) sum += v;
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * probes.size());
}
BENCHMARK(BM_BTreeLookup);

void BM_BTreeRangeSum(benchmark::State& state) {
  constexpr std::size_t kKeys = 1 << 20;
  std::vector<std::int64_t> keys(kKeys), values(kKeys);
  for (std::size_t i = 0; i < kKeys; ++i) {
    keys[i] = static_cast<std::int64_t>(i);
    values[i] = 1;
  }
  const auto tree = index::BPlusTree<std::int64_t, std::int64_t>::BulkLoad(
                        std::move(keys), std::move(values))
                        .value();
  const std::int64_t width = state.range(0);
  Rng rng(9);
  for (auto _ : state) {
    const auto lo =
        static_cast<std::int64_t>(rng.NextBounded(kKeys - width));
    std::uint64_t count;
    std::int64_t sum;
    tree.RangeSum(lo, lo + width - 1, &count, &sum);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * width);
}
BENCHMARK(BM_BTreeRangeSum)->Arg(16)->Arg(1024);

}  // namespace
}  // namespace pump
