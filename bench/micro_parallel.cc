// Execution-runtime microbenches: (1) spawn-per-call vs persistent
// fork-join dispatch latency, (2) flat global morsel claiming vs
// hierarchical claiming with work-stealing, (3) scalar vs interleaved
// prefetching hash probe on an out-of-cache table.
//
// Hand-rolled harness (no google-benchmark): the fork-join experiment
// times the dispatch primitive itself, and every experiment emits
// machine-readable records via --json=<path> for
// scripts/bench_trajectory.sh. --quick shrinks sizes to smoke-test
// proportions (scripts/check.sh runs that in Release).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_support/harness.h"
#include "bench_support/json_writer.h"
#include "common/cpu_features.h"
#include "common/rng.h"
#include "common/statistics.h"
#include "exec/executor.h"
#include "exec/morsel.h"
#include "exec/parallel.h"
#include "exec/work_stealing.h"
#include "hash/hash_table.h"

namespace pump {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

double Mean(const std::vector<double>& samples) {
  RunningStats stats;
  for (double sample : samples) stats.Add(sample);
  return stats.mean();
}

/// The pre-executor ParallelFor, reproduced as the spawn-per-call
/// baseline: one thread created and joined per dispatch.
void SpawnParallelFor(std::size_t workers,
                      const std::function<void(std::size_t)>& fn) {
  std::vector<std::thread> threads;
  threads.reserve(workers > 0 ? workers - 1 : 0);
  for (std::size_t w = 1; w < workers; ++w) {
    threads.emplace_back([&fn, w] { fn(w); });
  }
  fn(0);
  for (std::thread& thread : threads) thread.join();
}

/// Experiment 1: fork-join dispatch latency. The slot body is trivial, so
/// the measurement isolates the dispatch mechanism (thread create+join vs
/// condition-variable wake of parked workers).
void BenchForkJoin(bench::JsonWriter* json, bool quick) {
  // On single-core hosts DefaultWorkerCount() is 1 and both paths
  // degenerate to an inline call; always dispatch at least 2 slots so the
  // primitive under test is actually exercised.
  const std::size_t workers =
      std::max<std::size_t>(2, exec::DefaultWorkerCount());
  const int dispatches = quick ? 20 : 200;
  const int runs = quick ? 3 : bench::kPaperRuns;
  const std::string config = "workers=" + std::to_string(workers);

  bench::PrintBanner(std::cout, "micro_parallel/fork_join_dispatch",
                     "Per-dispatch latency (us) of a trivial " +
                         std::to_string(workers) +
                         "-slot fork-join: spawn-per-call threads vs the "
                         "persistent parked executor");

  std::atomic<std::uint64_t> sink{0};
  const auto body = [&sink](std::size_t w) {
    sink.fetch_add(w + 1, std::memory_order_relaxed);
  };

  const RunningStats spawn = bench::Repeat(runs, [&] {
    const auto start = Clock::now();
    for (int i = 0; i < dispatches; ++i) SpawnParallelFor(workers, body);
    return SecondsSince(start) * 1e6 / dispatches;
  });
  const RunningStats persistent = bench::Repeat(runs, [&] {
    const auto start = Clock::now();
    for (int i = 0; i < dispatches; ++i) {
      exec::Executor::Default().Run(workers, body);
    }
    return SecondsSince(start) * 1e6 / dispatches;
  });

  std::cout << "  spawn-per-call: " << bench::FormatMeanError(spawn)
            << " us/dispatch\n"
            << "  persistent:     " << bench::FormatMeanError(persistent)
            << " us/dispatch\n";
  const double speedup =
      persistent.mean() > 0.0 ? spawn.mean() / persistent.mean() : 0.0;
  std::printf("  speedup: %.1fx (acceptance floor: 5x)\n", speedup);

  const std::vector<exec::WorkerStats> stats =
      exec::Executor::Default().Stats();
  std::uint64_t tasks = 0, steals = 0, parks = 0, unparks = 0;
  for (const exec::WorkerStats& s : stats) {
    tasks += s.tasks_run;
    steals += s.steals;
    parks += s.parks;
    unparks += s.unparks;
  }
  std::cout << "  executor: " << exec::Executor::Default().dispatches()
            << " dispatches, " << tasks << " slot executions (" << steals
            << " beyond-first-slot), " << parks << " parks, " << unparks
            << " unparks across " << stats.size() << " pool threads\n";

  json->Record("fork_join_dispatch_us", "spawn " + config, spawn);
  json->Record("fork_join_dispatch_us", "persistent " + config, persistent);
  json->Record("fork_join_dispatch_speedup", config, speedup, 0.0, runs);
}

/// Experiment 2: global flat claiming vs hierarchical chunked claiming
/// with stealing, under 1..N workers. Small morsels and near-trivial
/// per-tuple work put the dispatch path itself on the critical path.
void BenchClaiming(bench::JsonWriter* json, bool quick) {
  const std::size_t total = quick ? (1u << 18) : (1u << 22);
  const std::size_t morsel = 256;
  const std::size_t max_workers =
      std::max<std::size_t>(2, exec::DefaultWorkerCount());
  const int runs = quick ? 3 : bench::kPaperRuns;

  bench::PrintBanner(
      std::cout, "micro_parallel/morsel_claiming",
      "Time (ms) to drain " + std::to_string(total) + " tuples in " +
          std::to_string(morsel) +
          "-tuple morsels: every-morsel global fetch_add vs chunked "
          "claiming + stealing (" +
          std::to_string(exec::kDefaultChunkMorsels) + " morsels/chunk)");

  for (std::size_t workers = 1; workers <= max_workers; ++workers) {
    std::atomic<std::uint64_t> sink{0};
    const RunningStats global = bench::Repeat(runs, [&] {
      exec::MorselDispatcher dispatcher(total, morsel);
      const auto start = Clock::now();
      exec::ParallelFor(workers, [&](std::size_t) {
        std::uint64_t local = 0;
        while (auto m = dispatcher.Next()) local += m->end - m->begin;
        sink.fetch_add(local, std::memory_order_relaxed);
      });
      return SecondsSince(start) * 1e3;
    });
    const RunningStats hierarchical = bench::Repeat(runs, [&] {
      exec::WorkStealingDispatcher dispatcher(total, morsel, workers);
      const auto start = Clock::now();
      exec::ParallelFor(workers, [&](std::size_t w) {
        std::uint64_t local = 0;
        while (auto m = dispatcher.Next(w)) local += m->end - m->begin;
        sink.fetch_add(local, std::memory_order_relaxed);
      });
      return SecondsSince(start) * 1e3;
    });
    const std::string config = "workers=" + std::to_string(workers);
    std::cout << "  " << config
              << "  global: " << bench::FormatMeanError(global, 3)
              << " ms  hierarchical: "
              << bench::FormatMeanError(hierarchical, 3) << " ms\n";
    json->Record("morsel_claiming_ms", "global " + config, global);
    json->Record("morsel_claiming_ms", "hierarchical " + config,
                 hierarchical);
  }
}

/// Experiment 3: scalar Lookup loop vs interleaved ProbeBatch vs the
/// 8-wide AVX2 ProbeBatch on a table larger than the last-level cache,
/// where every probe is a DRAM miss. The interleaved variant runs under
/// a forced-scalar dispatch scope so both fallback tiers stay measured
/// on AVX2 hosts; the simd variant takes whatever the host dispatches
/// (its config string records which).
template <typename Table>
void BenchProbe(bench::JsonWriter* json, const std::string& table_name,
                const Table& table, const std::vector<std::int64_t>& probes,
                int runs) {
  const std::size_t count = probes.size();
  std::vector<std::int64_t> values(count);
  std::vector<char> found_bytes(count);  // vector<bool> has no data().
  bool* found = reinterpret_cast<bool*>(found_bytes.data());

  std::uint64_t scalar_matches = 0;
  const std::vector<double> scalar =
      bench::RepeatSamples(runs, bench::kDefaultWarmup, [&] {
        scalar_matches = 0;
        const auto start = Clock::now();
        for (std::size_t i = 0; i < count; ++i) {
          std::int64_t value;
          if (table.Lookup(probes[i], &value)) {
            ++scalar_matches;
            values[i] = value;
          }
        }
        return SecondsSince(start) * 1e9 / static_cast<double>(count);
      });
  std::uint64_t batch_matches = 0;
  std::vector<double> interleaved;
  {
    common::ScopedForceScalar scalar_dispatch;
    interleaved = bench::RepeatSamples(runs, bench::kDefaultWarmup, [&] {
      const auto start = Clock::now();
      batch_matches =
          table.ProbeBatch(probes.data(), count, values.data(), found);
      return SecondsSince(start) * 1e9 / static_cast<double>(count);
    });
  }
  std::uint64_t simd_matches = 0;
  const std::vector<double> simd =
      bench::RepeatSamples(runs, bench::kDefaultWarmup, [&] {
        const auto start = Clock::now();
        simd_matches =
            table.ProbeBatch(probes.data(), count, values.data(), found);
        return SecondsSince(start) * 1e9 / static_cast<double>(count);
      });
  if (scalar_matches != batch_matches || scalar_matches != simd_matches) {
    std::cerr << "FATAL: probe variants disagree (" << scalar_matches
              << " vs " << batch_matches << " vs " << simd_matches
              << " matches)\n";
    std::exit(1);
  }

  const std::string config =
      "table=" + table_name + " slots=" + std::to_string(table.capacity()) +
      " probes=" + std::to_string(count);
  const std::string dispatch =
      common::SimdDispatchName(common::ActiveSimdDispatch());
  const double scalar_mean = Mean(scalar);
  const double interleaved_mean = Mean(interleaved);
  const double simd_mean = Mean(simd);
  std::cout << "  " << config << "\n"
            << "    scalar:             " << scalar_mean << " ns/probe\n"
            << "    interleaved:        " << interleaved_mean
            << " ns/probe\n"
            << "    simd (" << dispatch << "):  " << simd_mean
            << " ns/probe\n";
  const double speedup =
      interleaved_mean > 0.0 ? scalar_mean / interleaved_mean : 0.0;
  const double simd_speedup = simd_mean > 0.0 ? scalar_mean / simd_mean : 0.0;
  std::printf("    interleaved speedup: %.2fx  simd speedup: %.2fx\n",
              speedup, simd_speedup);
  json->RecordSamples("probe_ns", "scalar " + config, scalar);
  json->RecordSamples("probe_ns", "interleaved " + config, interleaved);
  json->RecordSamples("probe_ns", "simd " + config, simd);
  json->Record("probe_speedup", config, speedup, 0.0, runs);
  json->Record("probe_simd_speedup", "dispatch=" + dispatch + " " + config,
               simd_speedup, 0.0, runs);
}

void BenchProbePipeline(bench::JsonWriter* json, bool quick) {
  // Full size: 2^25 entries -> 512 MiB (perfect) / 1 GiB (linear probing,
  // load factor 0.5) of table, several times a large L3, so probes miss
  // all cache levels. Quick: everything cache-resident — the smoke test
  // only checks that both paths run and agree.
  const std::size_t entries = quick ? (1u << 14) : (1u << 25);
  const std::size_t count = quick ? (1u << 14) : (1u << 22);
  const int runs = quick ? 2 : 5;

  bench::PrintBanner(std::cout, "micro_parallel/probe_pipeline",
                     "Per-probe latency (ns), scalar dependent-miss loop "
                     "vs interleaved prefetching ProbeBatch (width " +
                         std::to_string(hash::kProbeBatchWidth) + ")");

  Rng rng(42);
  std::vector<std::int64_t> probes(count);
  for (auto& key : probes) {
    key = static_cast<std::int64_t>(rng.NextBounded(entries));
  }

  {
    hash::PerfectHashTable<std::int64_t, std::int64_t> table(entries);
    for (std::size_t i = 0; i < entries; ++i) {
      const auto key = static_cast<std::int64_t>(i);
      if (!table.Insert(key, key + 1).ok()) std::exit(1);
    }
    BenchProbe(json, "perfect", table, probes, runs);
  }
  {
    hash::LinearProbingHashTable<std::int64_t, std::int64_t> table(entries);
    for (std::size_t i = 0; i < entries; ++i) {
      const auto key = static_cast<std::int64_t>(i);
      if (!table.Insert(key, key + 1).ok()) std::exit(1);
    }
    BenchProbe(json, "linear_probing", table, probes, runs);
  }
}

}  // namespace
}  // namespace pump

int main(int argc, char** argv) {
  pump::bench::JsonWriter json =
      pump::bench::JsonWriter::FromArgs(&argc, argv);
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") quick = true;
  }

  pump::BenchForkJoin(&json, quick);
  pump::BenchClaiming(&json, quick);
  pump::BenchProbePipeline(&json, quick);

  if (!json.Write()) {
    std::cerr << "failed to write " << json.path() << "\n";
    return 1;
  }
  if (json.active()) {
    std::cout << "\nwrote " << json.records().size() << " records to "
              << json.path() << "\n";
  }
  return 0;
}
