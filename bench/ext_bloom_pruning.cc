// Extension (Sec. 9, "Transfer Optimization", Gubner et al. [32]): CPU-side
// Bloom-filter pruning of the probe relation before it crosses the
// interconnect. At low join selectivity this slashes the transfer volume,
// which rescues PCI-e-class links — and matters far less once NVLink
// removes the transfer bottleneck, which is exactly the paper's point
// about software workarounds vs faster hardware.

#include <iostream>

#include "bench_support/harness.h"
#include "common/table_printer.h"
#include "common/units.h"
#include "data/generator.h"
#include "data/workloads.h"
#include "hash/bloom.h"
#include "join/cost_model.h"
#include "sim/access_path.h"
#include "sim/overlap.h"

namespace pump {
namespace {

using join::HashTablePlacement;
using join::NopaConfig;
using join::NopaJoinModel;

// CPU Bloom-filter probe rate (one 64-bit load + popcount-style ALU per
// tuple, filter L3-resident): comfortably faster than the scan streams.
constexpr double kCpuBloomFilterRate = 3e9;

Seconds PrunedJoinSeconds(const hw::SystemProfile& profile,
                          transfer::TransferMethod method,
                          memory::MemoryKind kind,
                          const data::WorkloadSpec& w, double fpr) {
  const NopaJoinModel model(&profile);
  // Survivors: true matches plus false positives of the filter.
  const double survivor_fraction =
      w.selectivity + (1.0 - w.selectivity) * fpr;

  // Phase A (CPU): stream S once, probe the Bloom filter, compact
  // survivors into a pinned staging area (read + write of survivors).
  const sim::AccessPath cpu_mem =
      sim::MustResolve(profile.topology, hw::kCpu0, hw::kCpu0);
  const Bytes s_bytes = Bytes(static_cast<double>(w.s_bytes()));
  const Seconds filter_s = sim::OverlapTime(
      {s_bytes * (1.0 + survivor_fraction) / cpu_mem.seq_bw,
       static_cast<double>(w.s_tuples) / PerSecond(kCpuBloomFilterRate)},
      sim::kCpuOverlapExponent);

  // Phase B (GPU): join only the survivors; selectivity within the
  // survivors is ~ w.selectivity / survivor_fraction.
  data::WorkloadSpec pruned = w;
  pruned.s_tuples = static_cast<std::uint64_t>(
      static_cast<double>(w.s_tuples) * survivor_fraction);
  pruned.selectivity =
      survivor_fraction > 0 ? w.selectivity / survivor_fraction : 1.0;
  NopaConfig config;
  config.device = hw::kGpu0;
  config.r_location = hw::kCpu0;
  config.s_location = hw::kCpu0;
  config.hash_table = HashTablePlacement::Single(hw::kGpu0);
  config.method = method;
  config.relation_memory = kind;
  const Seconds join_s =
      model.Estimate(config, pruned).value().total_s();
  // The filter pass pipelines with the GPU join (chunked), overlapping
  // partially.
  return sim::OverlapTime({filter_s, join_s}, 2.0);
}

Seconds PlainJoinSeconds(const hw::SystemProfile& profile,
                         transfer::TransferMethod method,
                         memory::MemoryKind kind,
                         const data::WorkloadSpec& w) {
  const NopaJoinModel model(&profile);
  NopaConfig config;
  config.device = hw::kGpu0;
  config.r_location = hw::kCpu0;
  config.s_location = hw::kCpu0;
  config.hash_table = HashTablePlacement::Single(hw::kGpu0);
  config.method = method;
  config.relation_memory = kind;
  return model.Estimate(config, w).value().total_s();
}

void Run() {
  bench::PrintBanner(
      std::cout, "Extension: Bloom-filter join pruning [32]",
      "Workload A at varying selectivity; CPU pre-filters S before the "
      "GPU join (G Tuples/s of raw input tuples).");

  const hw::SystemProfile ibm = hw::Ac922Profile();
  const hw::SystemProfile intel = hw::XeonProfile();

  // Functional FPR measurement at host scale feeds the model.
  const std::size_t n = 1 << 20;
  hash::BlockedBloomFilter<std::int64_t> filter(n);
  const auto inner = data::GenerateInner<std::int64_t, std::int64_t>(n, 3);
  for (std::int64_t key : inner.keys) filter.Insert(key);
  const auto probes = data::GenerateOuterSelective<std::int64_t,
                                                   std::int64_t>(
      500'000, n, 0.0, 5);  // All misses: measures pure FPR.
  std::uint64_t false_positives = 0;
  for (std::int64_t key : probes.keys) {
    false_positives += filter.MayContain(key);
  }
  const double fpr =
      static_cast<double>(false_positives) / 500'000.0;
  std::cout << "Measured Bloom FPR at 12 bits/key: "
            << TablePrinter::FormatDouble(fpr * 100, 2)
            << "% (estimate: "
            << TablePrinter::FormatDouble(
                   filter.EstimatedFalsePositiveRate() * 100, 2)
            << "%), filter size for 2^27 keys: "
            << (hash::BlockedBloomFilter<std::int64_t>(1u << 27).bytes() >>
                20)
            << " MiB\n\n";

  TablePrinter table({"Selectivity", "PCI-e plain", "PCI-e + Bloom",
                      "NVLink plain", "NVLink + Bloom"});
  for (double sel : {0.01, 0.05, 0.2, 0.5, 1.0}) {
    data::WorkloadSpec w = data::WorkloadA();
    w.selectivity = sel;
    const double total = static_cast<double>(w.total_tuples());
    auto gt = [&](Seconds seconds) {
      return TablePrinter::FormatDouble(
          ToGTuplesPerSecond(total / seconds), 2);
    };
    table.AddRow(
        {TablePrinter::FormatDouble(sel * 100, 0) + "%",
         gt(PlainJoinSeconds(intel, transfer::TransferMethod::kZeroCopy,
                             memory::MemoryKind::kPinned, w)),
         gt(PrunedJoinSeconds(intel, transfer::TransferMethod::kZeroCopy,
                              memory::MemoryKind::kPinned, w, fpr)),
         gt(PlainJoinSeconds(ibm, transfer::TransferMethod::kCoherence,
                             memory::MemoryKind::kPageable, w)),
         gt(PrunedJoinSeconds(ibm, transfer::TransferMethod::kCoherence,
                              memory::MemoryKind::kPageable, w, fpr))});
  }
  table.Print(std::cout);

  std::cout << "\nReading the table: pruning multiplies PCI-e throughput "
               "at low selectivity\n(the transfer bottleneck shrinks with "
               "the survivor count) but buys little\non NVLink 2.0 — the "
               "paper's argument that fast interconnects obsolete\n"
               "transfer-minimizing workarounds whose benefit depends on "
               "the query (Sec. 9).\n";
}

}  // namespace
}  // namespace pump

int main() {
  pump::Run();
  return 0;
}
