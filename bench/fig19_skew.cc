// Regenerates Figure 19: join throughput when the probe relation follows a
// Zipf distribution (exponents 0..1.75), workload A, for CPU NOPA, PCI-e
// 3.0, and NVLink 2.0, sweeping the hybrid hash table's GPU/CPU split
// (0/100, 10/90, 30/70, 50/50, 100/0).

#include <iostream>

#include "bench_support/harness.h"
#include "common/table_printer.h"
#include "common/units.h"
#include "data/workloads.h"
#include "join/cost_model.h"

namespace pump {
namespace {

using join::HashTablePlacement;
using join::NopaConfig;
using join::NopaJoinModel;

void Run() {
  bench::PrintBanner(
      std::cout, "Figure 19",
      "Zipf-skewed probe keys (workload A): throughput (G Tuples/s) per "
      "hash-table GPU/CPU split.");

  const hw::SystemProfile ibm = hw::Ac922Profile();
  const hw::SystemProfile intel = hw::XeonProfile();
  const NopaJoinModel ibm_model(&ibm);
  const NopaJoinModel intel_model(&intel);

  const double splits[] = {0.0, 0.1, 0.3, 0.5, 1.0};

  for (const char* device : {"CPU (NOPA)", "PCI-e 3.0", "NVLink 2.0"}) {
    std::cout << "-- " << device << " --\n";
    std::vector<std::string> headers = {"Zipf z"};
    for (double split : splits) {
      headers.push_back(
          TablePrinter::FormatDouble(split * 100, 0) + "/" +
          TablePrinter::FormatDouble((1.0 - split) * 100, 0));
    }
    TablePrinter table(headers);
    for (double z : {0.0, 0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 1.75}) {
      std::vector<std::string> row = {TablePrinter::FormatDouble(z, 2)};
      for (double split : splits) {
        data::WorkloadSpec w = data::WorkloadA();
        w.zipf_exponent = z;
        NopaConfig config;
        config.r_location = hw::kCpu0;
        config.s_location = hw::kCpu0;
        const NopaJoinModel* model = &ibm_model;
        if (std::string(device) == "CPU (NOPA)") {
          config.device = hw::kCpu0;
          // The CPU always keeps the table in CPU memory.
          config.hash_table = HashTablePlacement::Single(hw::kCpu0);
        } else {
          config.device = hw::kGpu0;
          config.hash_table =
              HashTablePlacement::Hybrid(hw::kGpu0, hw::kCpu0, split);
          if (std::string(device) == "PCI-e 3.0") {
            model = &intel_model;
            config.method = transfer::TransferMethod::kZeroCopy;
            config.relation_memory = memory::MemoryKind::kPinned;
          }
        }
        Result<join::JoinTiming> timing = model->Estimate(config, w);
        row.push_back(
            timing.ok()
                ? TablePrinter::FormatDouble(
                      ToGTuplesPerSecond(timing.value().Throughput(
                          static_cast<double>(w.total_tuples()))),
                      2)
                : "n/a");
      }
      table.AddRow(row);
    }
    table.Print(std::cout);
    std::cout << "\n";
  }

  std::cout << "Paper shape: higher skew raises throughput when (part of)\n"
               "the table lives in CPU memory (hot entries cache on the\n"
               "GPU); with the table fully in GPU memory the stream bound\n"
               "dominates and curves stay flat. Paper gains at z=1.75:\n"
               "3.5x CPU, 3.6x NVLink, 6.1x PCI-e.\n";
}

}  // namespace
}  // namespace pump

int main() {
  pump::Run();
  return 0;
}
