// Extension (Sec. 9 "Out-of-core GPU Data Structures"): hash table vs
// B+-tree as the out-of-core GPU index. A perfect-hash probe is one
// dependent access; a B+-tree lookup walks depth+1 nodes — but its inner
// levels are tiny and stay GPU-resident, so only the leaf access crosses
// the interconnect when the index spills. The model quantifies the trade
// the paper alludes to; host microbenchmarks validate the functional
// structures.

#include <iostream>

#include "bench_support/harness.h"
#include "common/table_printer.h"
#include "common/units.h"
#include "data/workloads.h"
#include "hw/system_profile.h"
#include "index/btree.h"
#include "join/cost_model.h"
#include "sim/access_path.h"

namespace pump {
namespace {

void Run() {
  bench::PrintBanner(
      std::cout, "Extension: hash table vs B+-tree probes over NVLink",
      "Modelled probe rates (G lookups/s) for an index over 2^27 dense "
      "keys (2 GiB payload), by placement.");

  const hw::SystemProfile ibm = hw::Ac922Profile();
  const join::NopaJoinModel model(&ibm);
  const data::WorkloadSpec w = data::WorkloadA();

  // Hash probe: one dependent access at the placement's rate.
  auto hash_rate = [&](hw::MemoryNodeId node) {
    return model.HashTableAccessRate(
        hw::kGpu0, join::HashTablePlacement::Single(node), w);
  };

  // B+-tree probe: inner levels on the GPU (they are tiny), leaf access
  // at the leaf placement's rate. Inner depth for 2^27 keys at 16
  // keys/node: ceil(log16) - 1 = 6 levels, the first ~3 of which are
  // L2-resident.
  const double inner_levels = 6.0;
  const double l2_resident_levels = 3.0;
  auto btree_rate = [&](hw::MemoryNodeId leaf_node) {
    const sim::AccessPath gpu_local =
        sim::MustResolve(ibm.topology, hw::kGpu0, hw::kGpu0);
    const sim::AccessPath leaf_path =
        sim::MustResolve(ibm.topology, hw::kGpu0, leaf_node);
    const hw::CacheSpec& l2 = ibm.topology.cache(hw::kGpu0);
    const Seconds inner_s =
        l2_resident_levels / l2.random_access_rate +
        (inner_levels - l2_resident_levels) /
            gpu_local.dependent_access_rate;
    const Seconds leaf_s = 1.0 / leaf_path.dependent_access_rate;
    return 1.0 / (inner_s + leaf_s);
  };

  TablePrinter table({"Placement", "Hash probe G/s", "B+-tree probe G/s",
                      "Hash advantage"});
  struct Case {
    const char* name;
    hw::MemoryNodeId node;
  };
  for (const Case& c : {Case{"index in GPU memory", hw::kGpu0},
                        Case{"index spilled to CPU memory", hw::kCpu0}}) {
    const double h = hash_rate(c.node).giga_per_second();
    const double b = btree_rate(c.node).giga_per_second();
    table.AddRow({c.name, TablePrinter::FormatDouble(h, 2),
                  TablePrinter::FormatDouble(b, 2),
                  TablePrinter::FormatDouble(h / b, 1) + "x"});
  }
  table.Print(std::cout);

  // Functional sanity at host scale: both structures answer the same
  // point lookups; the tree additionally supports range scans.
  const std::size_t n = 1 << 20;
  std::vector<std::int64_t> keys(n), values(n);
  for (std::size_t i = 0; i < n; ++i) {
    keys[i] = static_cast<std::int64_t>(i);
    values[i] = static_cast<std::int64_t>(i) + 1;
  }
  auto tree = index::BPlusTree<std::int64_t, std::int64_t>::BulkLoad(
                  keys, values)
                  .value();
  std::uint64_t count;
  std::int64_t sum;
  tree.RangeSum(100, 199, &count, &sum);
  std::cout << "\nFunctional check: tree of " << tree.size()
            << " keys, depth " << tree.depth() << ", inner levels "
            << tree.inner_bytes() / 1024 << " KiB of "
            << tree.bytes() / (1 << 20)
            << " MiB total; range [100,199] -> count " << count
            << ", sum " << sum << "\n";
  std::cout << "\nTakeaway: out-of-core, the B+-tree loses less than its\n"
               "depth suggests (the hot inner levels never leave the GPU),\n"
               "but the single-access hash table keeps a clear lead for\n"
               "point probes — and only the tree can answer range scans.\n";
}

}  // namespace
}  // namespace pump

int main() {
  pump::Run();
  return 0;
}
