// Extension: resilience cost sweep. The paper's transfer-bound joins
// (Secs. 5-6) assume a clean interconnect; here the transfer.chunk
// failpoint injects transient chunk losses at rates from 0% to 10% and
// the engine's retry layer absorbs them. Reported: end-to-end throughput
// degradation and the retry/backoff overhead versus the fault-free
// baseline — and, crucially, that the query answer never changes.

#include <chrono>
#include <iostream>

#include "bench_support/harness.h"
#include "common/table_printer.h"
#include "engine/executor.h"
#include "engine/ssb.h"
#include "fault/fault_injector.h"

namespace pump {
namespace {

constexpr std::size_t kLineorderRows = 200'000;
constexpr std::uint64_t kInjectorSeed = 99;

double Seconds(std::chrono::steady_clock::time_point begin,
               std::chrono::steady_clock::time_point end) {
  return std::chrono::duration<double>(end - begin).count();
}

void Run() {
  bench::PrintBanner(
      std::cout, "Extension: transfer fault-rate sweep",
      "SSB Q1 via the resilient engine; transient chunk faults injected "
      "at the transfer.chunk failpoint, absorbed by per-chunk retry.");

  const engine::SsbDatabase db =
      engine::SsbDatabase::Generate(kLineorderRows, 7);
  const engine::Query query = engine::SsbQ1(db);
  const engine::QueryResult reference =
      engine::Executor::Run(query, 4).value();
  {
    // Warm-up so the fault-free baseline row pays no first-touch cost.
    engine::ExecOptions warmup;
    warmup.workers = 4;
    (void)engine::Executor::RunResilient(query, warmup);
  }

  TablePrinter table({"Fault rate", "Runtime (ms)", "Slowdown", "Faults",
                      "Retries", "Backoff (us)", "Result"});
  double baseline_ms = 0.0;
  for (double rate : {0.0, 0.01, 0.02, 0.05, 0.10}) {
    std::uint64_t faults = 0;
    std::uint64_t retries = 0;
    double backoff_s = 0.0;
    bool identical = true;
    bool clean = true;
    const RunningStats stats =
        bench::Repeat(bench::kPaperRuns, [&]() -> double {
          // A fresh injector per run replays the identical fault schedule
          // (same seed), so run-to-run variance is pure machine noise.
          fault::FaultInjector injector(kInjectorSeed);
          fault::FaultSpec spec;
          spec.probability = rate;
          injector.Arm(fault::kTransferChunk, spec);

          engine::ExecOptions options;
          options.workers = 4;
          options.chunk_bytes = 16 * 1024;
          options.morsel_tuples = 10'000;
          options.retry.max_attempts = 50;
          options.injector = rate > 0.0 ? &injector : nullptr;

          const auto begin = std::chrono::steady_clock::now();
          auto report = engine::Executor::RunResilient(query, options);
          const auto end = std::chrono::steady_clock::now();
          if (!report.ok()) {
            clean = false;
            return Seconds(begin, end);
          }
          faults = report.value().faults_injected;
          retries = report.value().transfer_retries;
          backoff_s = report.value().modelled_backoff_s;
          identical = identical && report.value().result == reference &&
                      report.value().used_gpu;
          return Seconds(begin, end);
        });
    const double ms = stats.mean() * 1e3;
    if (rate == 0.0) baseline_ms = ms;
    table.AddRow(
        {TablePrinter::FormatDouble(rate * 100, 0) + "%",
         TablePrinter::FormatDouble(ms, 2),
         TablePrinter::FormatDouble(baseline_ms > 0 ? ms / baseline_ms : 1.0,
                                    2) +
             "x",
         std::to_string(faults), std::to_string(retries),
         TablePrinter::FormatDouble(backoff_s * 1e6, 2),
         clean && identical ? "identical" : "DIVERGED"});
  }
  table.Print(std::cout);

  std::cout << "\nReading the table: every injected transient fault is "
               "retried at chunk\ngranularity, so the join result stays "
               "bit-identical at every fault rate;\nthe cost is bounded "
               "re-transfer work (retries track faults one-to-one)\nplus "
               "the modelled exponential backoff — the degradation ladder's "
               "first\nrung (retry) absorbing faults before spill or CPU "
               "fallback is needed.\n";
}

}  // namespace
}  // namespace pump

int main() {
  pump::Run();
  return 0;
}
