// Regenerates Figure 1: theoretical vs measured bidirectional bandwidth of
// CPU memory, NVLink 2.0, and PCI-e 3.0. The "measured" values come from
// the calibrated hardware model; "paper" columns quote the figure.

#include <iostream>

#include "bench_support/harness.h"
#include "common/table_printer.h"
#include "common/units.h"
#include "hw/link.h"
#include "hw/memory_spec.h"

namespace pump {
namespace {

void Run() {
  bench::PrintBanner(
      std::cout, "Figure 1",
      "Bidirectional bandwidth (GiB/s): NVLink 2.0 eliminates the GPU's "
      "main-memory access disadvantage compared to the CPU.");

  const hw::MemorySpec memory = hw::Power9Memory();
  const hw::LinkSpec nvlink = hw::Nvlink2x3();
  const hw::LinkSpec pcie = hw::Pcie3x16();

  TablePrinter table({"Path", "Theoretical", "Measured (model)",
                      "Paper theoretical", "Paper measured"});
  auto row = [&](const char* name, double theoretical, double measured,
                 double paper_theo, double paper_meas) {
    table.AddRow({name, TablePrinter::FormatDouble(theoretical, 1),
                  TablePrinter::FormatDouble(measured, 1),
                  TablePrinter::FormatDouble(paper_theo, 1),
                  TablePrinter::FormatDouble(paper_meas, 1)});
  };

  row("Memory (POWER9, 8ch DDR4-2666)", ToGiBPerSecond(memory.electrical_bw),
      ToGiBPerSecond(memory.duplex_bw), 158.9, 102.6);
  // Links are full-duplex: theoretical bidirectional = 2x per direction,
  // derated by packet header overhead.
  row("NVLink 2.0 (3 links)",
      ToGiBPerSecond(2.0 * nvlink.electrical_bw * nvlink.BulkEfficiency()),
      ToGiBPerSecond(nvlink.duplex_bw), 124.6, 120.7);
  row("PCI-e 3.0 x16",
      ToGiBPerSecond(2.0 * pcie.electrical_bw * pcie.BulkEfficiency()),
      ToGiBPerSecond(pcie.duplex_bw), 24.7, 20.5);
  table.Print(std::cout);

  std::cout << "\nKey result: measured NVLink 2.0 bandwidth ("
            << TablePrinter::FormatDouble(ToGiBPerSecond(nvlink.duplex_bw), 1)
            << " GiB/s) exceeds measured memory bandwidth ("
            << TablePrinter::FormatDouble(ToGiBPerSecond(memory.duplex_bw), 1)
            << " GiB/s): the interconnect is no longer the bottleneck.\n";
}

}  // namespace
}  // namespace pump

int main() {
  pump::Run();
  return 0;
}
