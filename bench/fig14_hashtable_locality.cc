// Regenerates Figure 14: GPU join throughput as the hash table moves
// further away (0-3 hops); base relations stay in local CPU memory
// (one NVLink hop), workloads A/B/C of Table 2.

#include <iostream>

#include "bench_support/harness.h"
#include "common/table_printer.h"
#include "common/units.h"
#include "data/workloads.h"
#include "join/cost_model.h"

namespace pump {
namespace {

using join::HashTablePlacement;
using join::NopaConfig;
using join::NopaJoinModel;

// Paper values (G Tuples/s), Fig. 14: rows = workload, cols = HT on GPU,
// CPU, rCPU, rGPU.
constexpr double kPaper[3][4] = {{3.82, 0.59, 0.30, 0.24},
                                 {4.17, 0.66, 0.33, 0.33},
                                 {2.62, 0.37, 0.19, 0.13}};

void Run() {
  bench::PrintBanner(
      std::cout, "Figure 14",
      "Hash-table locality: throughput (G Tuples/s) with 0-3 hops to the "
      "hash table; base relations one NVLink hop away.");

  const hw::SystemProfile ibm = hw::Ac922Profile();
  const NopaJoinModel model(&ibm);

  const data::WorkloadSpec workloads[] = {data::WorkloadA(),
                                          data::WorkloadB(),
                                          data::WorkloadC()};
  const hw::MemoryNodeId locations[] = {hw::kGpu0, hw::kCpu0, hw::kCpu1,
                                        hw::kGpu1};
  const char* location_names[] = {"GPU", "CPU", "rCPU", "rGPU"};

  TablePrinter table(
      {"Workload", "HT location", "Hops", "G Tuples/s", "Paper"});
  for (int w = 0; w < 3; ++w) {
    for (int l = 0; l < 4; ++l) {
      NopaConfig config;
      config.device = hw::kGpu0;
      config.r_location = hw::kCpu0;
      config.s_location = hw::kCpu0;
      config.hash_table = HashTablePlacement::Single(locations[l]);
      Result<join::JoinTiming> timing =
          model.Estimate(config, workloads[w]);
      const double tput =
          timing.ok()
              ? ToGTuplesPerSecond(timing.value().Throughput(
                    static_cast<double>(workloads[w].total_tuples())))
              : 0.0;
      table.AddRow({workloads[w].name, location_names[l], std::to_string(l),
                    TablePrinter::FormatDouble(tput, 2),
                    TablePrinter::FormatDouble(kPaper[w][l], 2)});
    }
  }
  table.Print(std::cout);

  std::cout << "\nShape checks: one hop to the hash table costs 75-85% of\n"
               "throughput; workload B gets no relief because the V100 L2 is\n"
               "memory-side and cannot cache a remote table (Sec. 7.2.3).\n";
}

}  // namespace
}  // namespace pump

int main() {
  pump::Run();
  return 0;
}
