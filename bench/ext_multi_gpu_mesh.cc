// Extension (Sec. 6.3): multi-GPU execution on topologies with and
// without direct GPU-GPU links.
//
// Part 1 — the paper's hash-table interleaving argument: distributing a
// large hash table over GPU memories only pays off when the GPUs reach
// each other directly; on the AC922 (GPUs connected through both CPU
// sockets) it backfires.
//
// Part 2 — a functional 1..8 GPU scaling curve over the sharded-join
// plans the compiler now emits (plan::ShardDescriptor + ExchangeStage):
// each mesh family (NVLink ring, NVSwitch crossbar, host-bounce) is
// swept over {1, 2, 4, 8} GPUs. Every sharded plan is executed and its
// result checked bit-identical against the CPU reference; the recorded
// metric is the modelled scaling speedup T1 / (T1/n + exchange_s) where
// T1 is the measured single-device probe wall time and exchange_s the
// exchange stage's modelled all-to-all cost on that mesh. The bench
// self-checks the acceptance ordering crossbar >= ring >= host-bounce
// at every GPU count and emits `--json` records for BENCH_micro.json
// (scripts/bench_trajectory.sh).

#include <chrono>
#include <cstdio>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "bench_support/harness.h"
#include "bench_support/json_writer.h"
#include "common/statistics.h"
#include "common/table_printer.h"
#include "common/units.h"
#include "data/workloads.h"
#include "engine/ssb.h"
#include "hw/system_profile.h"
#include "hw/topology.h"
#include "join/coprocess.h"
#include "plan/compiler.h"
#include "plan/executor.h"
#include "plan/plan.h"

namespace pump {
namespace {

using join::CoProcessConfig;
using join::CoProcessModel;
using join::ExecutionStrategy;

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

double Estimate(const hw::SystemProfile& profile, hw::DeviceId cpu,
                hw::DeviceId gpu, std::vector<hw::DeviceId> extra,
                ExecutionStrategy strategy, const data::WorkloadSpec& w) {
  const CoProcessModel model(&profile);
  CoProcessConfig config;
  config.cpu = cpu;
  config.gpu = gpu;
  config.extra_gpus = std::move(extra);
  config.data_location = cpu;
  Result<join::JoinTiming> timing = model.Estimate(strategy, config, w);
  return ToGTuplesPerSecond(timing.value().Throughput(
      static_cast<double>(w.total_tuples())));
}

void RunInterleavedTable() {
  bench::PrintBanner(
      std::cout, "Extension: multi-GPU interleaved hash tables (Sec. 6.3)",
      "Workload C16 with a 24 GiB hash table (exceeds one GPU's memory); "
      "G Tuples/s.");

  const data::WorkloadSpec big =
      data::WorkloadC16(1536ull << 20, 1536ull << 20);

  // AC922: GPUs connected only through both CPU sockets.
  hw::SystemProfile ac922 = hw::Ac922Profile();

  // DGX-style: direct 1-link NVLink mesh between GPUs.
  hw::SystemProfile mesh2;
  mesh2.name = "direct mesh, 2 GPUs";
  mesh2.topology = hw::DirectGpuMesh(2);
  hw::SystemProfile mesh4;
  mesh4.name = "direct mesh, 4 GPUs";
  mesh4.topology = hw::DirectGpuMesh(4);

  TablePrinter table({"Topology", "1 GPU (hybrid HT)", "Interleaved GPUs"});
  table.AddRow(
      {"AC922 (no direct GPU link)",
       TablePrinter::FormatDouble(
           Estimate(ac922, hw::kCpu0, hw::kGpu0, {},
                    ExecutionStrategy::kGpuOnly, big),
           2),
       TablePrinter::FormatDouble(
           Estimate(ac922, hw::kCpu0, hw::kGpu0, {hw::kGpu1},
                    ExecutionStrategy::kMultiGpu, big),
           2)});
  table.AddRow(
      {"Direct mesh, 2 GPUs",
       TablePrinter::FormatDouble(
           Estimate(mesh2, 0, 1, {}, ExecutionStrategy::kGpuOnly, big), 2),
       TablePrinter::FormatDouble(
           Estimate(mesh2, 0, 1, {2}, ExecutionStrategy::kMultiGpu, big),
           2)});
  table.AddRow(
      {"Direct mesh, 4 GPUs",
       TablePrinter::FormatDouble(
           Estimate(mesh4, 0, 1, {}, ExecutionStrategy::kGpuOnly, big), 2),
       TablePrinter::FormatDouble(
           Estimate(mesh4, 0, 1, {2, 3, 4}, ExecutionStrategy::kMultiGpu,
                    big),
           2)});
  table.Print(std::cout);

  std::cout
      << "\nReading the table: interleaving only pays off when GPUs reach\n"
         "each other directly; routing table shares through two CPU\n"
         "sockets (AC922) is slower than one GPU spilling to CPU memory.\n"
         "With 2+ meshed GPUs the 24 GiB table fits entirely in combined\n"
         "GPU memory and throughput scales with the mesh (Sec. 6.3's\n"
         "bandwidth/skew arguments).\n";
}

struct MeshFamily {
  std::string name;
  hw::SystemProfile (*make)(int);
};

/// Compiles `query` sharded across all GPUs of `profile`, executes it,
/// and checks the result is bit-identical to `expected`. Returns the
/// exchange stage's modelled cost in seconds.
double RunShardedCell(const engine::Query& query,
                      const hw::SystemProfile& profile, int gpus,
                      const engine::QueryResult& expected,
                      const std::string& label) {
  plan::CompileOptions options;
  options.policy = plan::PlacementPolicy::kGpuPreferred;
  options.profile = &profile;
  options.shard_devices =
      profile.topology.DevicesOfKind(hw::DeviceKind::kGpu);

  Result<plan::PhysicalPlan> plan = plan::Compile(query, options);
  if (!plan.ok()) {
    std::cerr << "FATAL: " << label
              << ": compile failed: " << plan.status().ToString() << "\n";
    std::exit(1);
  }
  if (static_cast<int>(plan.value().shard.shard_count()) !=
      (gpus > 1 ? gpus : 1)) {
    std::cerr << "FATAL: " << label << ": expected " << gpus
              << " shards, plan has " << plan.value().shard.shard_count()
              << "\n";
    std::exit(1);
  }

  engine::ExecOptions exec_options;
  exec_options.workers = 2;
  Result<engine::ExecReport> report =
      plan::ExecutePlan(plan.value(), exec_options);
  if (!report.ok()) {
    std::cerr << "FATAL: " << label
              << ": execute failed: " << report.status().ToString() << "\n";
    std::exit(1);
  }
  if (!(report.value().result == expected)) {
    std::cerr << "FATAL: " << label
              << ": sharded result differs from the CPU reference\n";
    std::exit(1);
  }
  return plan.value().exchange.modelled_cost_s;
}

void RunShardedScaling(bench::JsonWriter* json, bool quick) {
  bench::PrintBanner(
      std::cout, "Extension: sharded-join scaling over N-GPU meshes",
      "SSB Q2 hash-sharded across 1..8 GPUs; modelled speedup over one "
      "device (T1 / (T1/n + exchange)). Every cell's result is checked "
      "bit-identical to the CPU reference.");

  const std::size_t rows = quick ? 20'000 : 200'000;
  const int runs = quick ? 3 : bench::kPaperRuns;
  const engine::SsbDatabase db = engine::SsbDatabase::Generate(rows, 42);

  engine::Query query;
  bool found = false;
  for (const engine::NamedQuery& named : engine::SsbSuite(db)) {
    if (std::string(named.name) == "ssb-q2") {
      query = named.query;
      found = true;
    }
  }
  if (!found) {
    std::cerr << "FATAL: ssb-q2 missing from the SSB suite\n";
    std::exit(1);
  }

  // CPU reference result: every sharded cell must reproduce it exactly.
  plan::CompileOptions cpu_options;
  cpu_options.policy = plan::PlacementPolicy::kCpuOnly;
  Result<plan::PhysicalPlan> cpu_plan = plan::Compile(query, cpu_options);
  engine::ExecOptions exec_options;
  exec_options.workers = 2;
  Result<engine::ExecReport> reference =
      plan::ExecutePlan(cpu_plan.value(), exec_options);
  if (!reference.ok()) {
    std::cerr << "FATAL: CPU reference failed: "
              << reference.status().ToString() << "\n";
    std::exit(1);
  }
  const engine::QueryResult expected = reference.value().result;

  // T1: measured wall time of the single-device plan. The probe runs on
  // the host either way (modelled GPU), so one measurement serves every
  // mesh family — the families differ only in their exchange cost.
  const hw::SystemProfile single = hw::NvlinkRingProfile(1);
  plan::CompileOptions single_options;
  single_options.policy = plan::PlacementPolicy::kGpuPreferred;
  single_options.profile = &single;
  Result<plan::PhysicalPlan> single_plan =
      plan::Compile(query, single_options);
  if (!single_plan.ok()) {
    std::cerr << "FATAL: single-device compile failed: "
              << single_plan.status().ToString() << "\n";
    std::exit(1);
  }
  const std::vector<double> t1_samples =
      bench::RepeatSamples(runs, bench::kDefaultWarmup, [&] {
        const auto start = Clock::now();
        Result<engine::ExecReport> got =
            plan::ExecutePlan(single_plan.value(), exec_options);
        if (!got.ok() || !(got.value().result == expected)) std::exit(1);
        return SecondsSince(start);
      });
  RunningStats t1_stats;
  for (double sample : t1_samples) t1_stats.Add(sample);
  const double t1 = t1_stats.mean();

  const std::vector<MeshFamily> families = {
      {"crossbar", hw::NvSwitchCrossbarProfile},
      {"ring", hw::NvlinkRingProfile},
      {"host-bounce", hw::HostBounceMeshProfile},
  };
  const std::vector<int> gpu_counts = {2, 4, 8};

  TablePrinter table({"Mesh", "GPUs", "Exchange (ms)", "Speedup (x)"});
  // exchange_by_count[n][family] for the ordering self-check.
  std::map<int, std::map<std::string, double>> exchange_by_count;

  for (const MeshFamily& family : families) {
    json->Record("multi_gpu_mesh_scaling", family.name + " gpus=1", 1.0,
                 0.0, runs);
    table.AddRow({family.name, "1", TablePrinter::FormatDouble(0.0, 4),
                  TablePrinter::FormatDouble(1.0, 2)});
    for (int gpus : gpu_counts) {
      const hw::SystemProfile profile = family.make(gpus);
      const std::string label =
          family.name + " gpus=" + std::to_string(gpus);
      const double exchange_s =
          RunShardedCell(query, profile, gpus, expected, label);
      exchange_by_count[gpus][family.name] = exchange_s;
      const double speedup = t1 / (t1 / gpus + exchange_s);
      json->Record("multi_gpu_mesh_scaling", label, speedup, 0.0, runs);
      json->Record("multi_gpu_mesh_exchange_ms", label, exchange_s * 1e3,
                   0.0, 1);
      table.AddRow({family.name, std::to_string(gpus),
                    TablePrinter::FormatDouble(exchange_s * 1e3, 4),
                    TablePrinter::FormatDouble(speedup, 2)});
    }
  }
  table.Print(std::cout);
  std::printf("T1 (single device, measured): %.3f ms over %d runs\n",
              t1 * 1e3, runs);

  // Acceptance ordering: at every GPU count the crossbar's all-to-all is
  // no slower than the ring's, and the ring's no slower than bouncing
  // every partition through host memory.
  for (const auto& [gpus, by_family] : exchange_by_count) {
    const double crossbar = by_family.at("crossbar");
    const double ring = by_family.at("ring");
    const double host_bounce = by_family.at("host-bounce");
    const double slack = 1e-12;
    if (crossbar > ring + slack || ring > host_bounce + slack) {
      std::cerr << "FATAL: exchange-cost ordering violated at " << gpus
                << " GPUs: crossbar=" << crossbar << "s ring=" << ring
                << "s host-bounce=" << host_bounce << "s\n";
      std::exit(1);
    }
  }
  std::cout << "\nSelf-check OK: crossbar >= ring >= host-bounce speedup "
               "at every GPU count; all sharded results bit-identical to "
               "the CPU reference.\n";
}

}  // namespace
}  // namespace pump

int main(int argc, char** argv) {
  pump::bench::JsonWriter json = pump::bench::JsonWriter::FromArgs(&argc,
                                                                   argv);
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else {
      std::fprintf(stderr,
                   "usage: ext_multi_gpu_mesh [--quick] [--json=<path>]\n");
      return 2;
    }
  }
  pump::RunInterleavedTable();
  pump::RunShardedScaling(&json, quick);
  if (!json.Write()) {
    std::fprintf(stderr, "ext_multi_gpu_mesh: cannot write %s\n",
                 json.path().c_str());
    return 1;
  }
  return 0;
}
