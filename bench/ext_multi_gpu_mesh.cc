// Extension (Sec. 6.3): multi-GPU hash-table interleaving on topologies
// with and without direct GPU-GPU links. The paper proposes distributing
// large hash tables over GPU memories "as GPUs are latency insensitive";
// this bench shows the proposal depends on the mesh: on the AC922 (GPUs
// reachable only via both CPUs) it backfires, on a DGX-style direct mesh
// it scales.

#include <iostream>

#include "bench_support/harness.h"
#include "common/table_printer.h"
#include "common/units.h"
#include "data/workloads.h"
#include "hw/system_profile.h"
#include "join/coprocess.h"

namespace pump {
namespace {

using join::CoProcessConfig;
using join::CoProcessModel;
using join::ExecutionStrategy;

double Estimate(const hw::SystemProfile& profile, hw::DeviceId cpu,
                hw::DeviceId gpu, std::vector<hw::DeviceId> extra,
                ExecutionStrategy strategy, const data::WorkloadSpec& w) {
  const CoProcessModel model(&profile);
  CoProcessConfig config;
  config.cpu = cpu;
  config.gpu = gpu;
  config.extra_gpus = std::move(extra);
  config.data_location = cpu;
  Result<join::JoinTiming> timing = model.Estimate(strategy, config, w);
  return ToGTuplesPerSecond(timing.value().Throughput(
      static_cast<double>(w.total_tuples())));
}

void Run() {
  bench::PrintBanner(
      std::cout, "Extension: multi-GPU interleaved hash tables (Sec. 6.3)",
      "Workload C16 with a 24 GiB hash table (exceeds one GPU's memory); "
      "G Tuples/s.");

  const data::WorkloadSpec big =
      data::WorkloadC16(1536ull << 20, 1536ull << 20);

  // AC922: GPUs connected only through both CPU sockets.
  hw::SystemProfile ac922 = hw::Ac922Profile();

  // DGX-style: direct 1-link NVLink mesh between GPUs.
  hw::SystemProfile mesh2;
  mesh2.name = "direct mesh, 2 GPUs";
  mesh2.topology = hw::DirectGpuMesh(2);
  hw::SystemProfile mesh4;
  mesh4.name = "direct mesh, 4 GPUs";
  mesh4.topology = hw::DirectGpuMesh(4);

  TablePrinter table({"Topology", "1 GPU (hybrid HT)", "Interleaved GPUs"});
  table.AddRow(
      {"AC922 (no direct GPU link)",
       TablePrinter::FormatDouble(
           Estimate(ac922, hw::kCpu0, hw::kGpu0, {},
                    ExecutionStrategy::kGpuOnly, big),
           2),
       TablePrinter::FormatDouble(
           Estimate(ac922, hw::kCpu0, hw::kGpu0, {hw::kGpu1},
                    ExecutionStrategy::kMultiGpu, big),
           2)});
  table.AddRow(
      {"Direct mesh, 2 GPUs",
       TablePrinter::FormatDouble(
           Estimate(mesh2, 0, 1, {}, ExecutionStrategy::kGpuOnly, big), 2),
       TablePrinter::FormatDouble(
           Estimate(mesh2, 0, 1, {2}, ExecutionStrategy::kMultiGpu, big),
           2)});
  table.AddRow(
      {"Direct mesh, 4 GPUs",
       TablePrinter::FormatDouble(
           Estimate(mesh4, 0, 1, {}, ExecutionStrategy::kGpuOnly, big), 2),
       TablePrinter::FormatDouble(
           Estimate(mesh4, 0, 1, {2, 3, 4}, ExecutionStrategy::kMultiGpu,
                    big),
           2)});
  table.Print(std::cout);

  std::cout
      << "\nReading the table: interleaving only pays off when GPUs reach\n"
         "each other directly; routing table shares through two CPU\n"
         "sockets (AC922) is slower than one GPU spilling to CPU memory.\n"
         "With 2+ meshed GPUs the 24 GiB table fits entirely in combined\n"
         "GPU memory and throughput scales with the mesh (Sec. 6.3's\n"
         "bandwidth/skew arguments).\n";
}

}  // namespace
}  // namespace pump

int main() {
  pump::Run();
  return 0;
}
