// Engine-path microbench: the preserved pre-IR fused executor
// (engine::legacy::RunFused) vs compiling to the physical-plan IR and
// executing it (plan::Compile + plan::ExecutePlan), per SSB query and
// TPC-H Q6. The plan IR's acceptance bar is <= 5% overhead over the
// fused path; the emitted `engine_plan_overhead_pct` records are the
// evidence, merged into BENCH_micro.json by scripts/bench_trajectory.sh.
//
// Hand-rolled harness (no google-benchmark): compile time is measured
// separately from execution so the overhead number isolates the morsel
// loop, and records are emitted via --json=<path>. --quick shrinks the
// fact table to smoke-test proportions.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_support/harness.h"
#include "bench_support/json_writer.h"
#include "common/statistics.h"
#include "data/tpch.h"
#include "engine/legacy_fused.h"
#include "engine/ssb.h"
#include "exec/parallel.h"
#include "obs/trace.h"
#include "plan/compiler.h"
#include "plan/executor.h"
#include "plan/q6_bridge.h"

namespace pump {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct BenchCase {
  std::string name;
  engine::Query query;
};

double Mean(const std::vector<double>& samples) {
  RunningStats stats;
  for (double sample : samples) stats.Add(sample);
  return stats.mean();
}

void BenchQuery(bench::JsonWriter* json, const BenchCase& bench_case,
                std::size_t workers, int runs) {
  const std::string config =
      bench_case.name + " workers=" + std::to_string(workers);

  // Reference result from the fused path; every timed variant must match.
  Result<engine::QueryResult> expected =
      engine::legacy::RunFused(bench_case.query, workers);
  if (!expected.ok()) {
    std::cerr << "FATAL: " << config
              << ": fused path failed: " << expected.status().ToString()
              << "\n";
    std::exit(1);
  }

  const std::vector<double> fused =
      bench::RepeatSamples(runs, bench::kDefaultWarmup, [&] {
        const auto start = Clock::now();
        Result<engine::QueryResult> got =
            engine::legacy::RunFused(bench_case.query, workers);
        const double us = SecondsSince(start) * 1e6;
        if (!got.ok() || !(got.value() == expected.value())) std::exit(1);
        return us;
      });

  // Compile once outside the timed region (plans are reusable), then time
  // execution; compile cost is reported as its own metric.
  const auto compile_start = Clock::now();
  Result<plan::PhysicalPlan> physical = plan::Compile(bench_case.query);
  const double compile_us = SecondsSince(compile_start) * 1e6;
  if (!physical.ok()) {
    std::cerr << "FATAL: " << config
              << ": compile failed: " << physical.status().ToString() << "\n";
    std::exit(1);
  }
  engine::ExecOptions options;
  options.workers = workers;
  options.gpu_plan = false;
  const std::vector<double> plan_ir =
      bench::RepeatSamples(runs, bench::kDefaultWarmup, [&] {
        const auto start = Clock::now();
        Result<engine::ExecReport> got =
            plan::ExecutePlan(physical.value(), options);
        const double us = SecondsSince(start) * 1e6;
        if (!got.ok() || !(got.value().result == expected.value())) {
          std::exit(1);
        }
        return us;
      });

  // Same plan with the trace recorder runtime-enabled: the full span
  // recording cost, reported alongside the disabled-state overhead. The
  // rings wrap silently, so long runs stay bounded.
  obs::TraceRecorder& recorder = obs::TraceRecorder::Instance();
  recorder.Clear();
  recorder.Enable();
  const std::vector<double> traced =
      bench::RepeatSamples(runs, bench::kDefaultWarmup, [&] {
        const auto start = Clock::now();
        Result<engine::ExecReport> got =
            plan::ExecutePlan(physical.value(), options);
        const double us = SecondsSince(start) * 1e6;
        if (!got.ok() || !(got.value().result == expected.value())) {
          std::exit(1);
        }
        return us;
      });
  recorder.Disable();
  recorder.Clear();

  const double fused_mean = Mean(fused);
  const double plan_ir_mean = Mean(plan_ir);
  const double traced_mean = Mean(traced);
  const double overhead_pct =
      fused_mean > 0.0 ? (plan_ir_mean - fused_mean) / fused_mean * 100.0
                       : 0.0;
  const double trace_overhead_pct =
      plan_ir_mean > 0.0
          ? (traced_mean - plan_ir_mean) / plan_ir_mean * 100.0
          : 0.0;
  std::cout << "  " << config << "\n"
            << "    fused:   " << fused_mean << " us/query\n"
            << "    plan IR: " << plan_ir_mean << " us/query (compile "
            << compile_us << " us, once)\n"
            << "    traced:  " << traced_mean
            << " us/query (recorder enabled)\n";
  std::printf("    overhead: %+.2f%% (acceptance ceiling: +5%%)\n",
              overhead_pct);
  std::printf("    tracing enabled: %+.2f%% over disabled\n",
              trace_overhead_pct);

  json->RecordSamples("engine_query_us", "fused " + config, fused);
  json->RecordSamples("engine_query_us", "plan_ir " + config, plan_ir);
  json->RecordSamples("engine_query_us", "traced " + config, traced);
  json->Record("engine_plan_compile_us", config, compile_us, 0.0, 1);
  json->Record("engine_plan_overhead_pct", config, overhead_pct, 0.0, runs);
  json->Record("engine_trace_overhead_pct", config, trace_overhead_pct, 0.0,
               runs);
}

}  // namespace
}  // namespace pump

int main(int argc, char** argv) {
  pump::bench::JsonWriter json =
      pump::bench::JsonWriter::FromArgs(&argc, argv);
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") quick = true;
  }

  const std::size_t rows = quick ? 50'000 : 2'000'000;
  // Bumped from 3/kPaperRuns: the overhead-pct records gate a <=5%
  // acceptance ceiling, and without warmup + extra runs the stderr was
  // comparable to the ceiling itself.
  const int runs = quick ? 5 : 15;
  // Single-core hosts report DefaultWorkerCount() == 1; always use at
  // least 2 workers so the morsel dispatch path is genuinely concurrent.
  const std::size_t workers =
      std::max<std::size_t>(2, pump::exec::DefaultWorkerCount());

  pump::bench::PrintBanner(
      std::cout, "micro_engine/fused_vs_plan_ir",
      "Per-query latency (us) over " + std::to_string(rows) +
          " fact rows: the pre-IR fused executor vs the compiled "
          "physical-plan IR (CPU placement, " +
          std::to_string(workers) + " workers)");

  const pump::engine::SsbDatabase db =
      pump::engine::SsbDatabase::Generate(rows, /*seed=*/42);
  std::vector<pump::BenchCase> cases;
  for (const pump::engine::NamedQuery& named : pump::engine::SsbSuite(db)) {
    cases.push_back({named.name, named.query});
  }
  const pump::plan::Q6PlanInput q6 =
      pump::plan::Q6PlanInput::From(pump::data::GenerateLineitemQ6(rows, 7));
  cases.push_back({"q6", q6.MakeQuery()});

  for (const pump::BenchCase& bench_case : cases) {
    pump::BenchQuery(&json, bench_case, workers, runs);
  }

  if (!json.Write()) {
    std::cerr << "failed to write " << json.path() << "\n";
    return 1;
  }
  if (json.active()) {
    std::cout << "\nwrote " << json.records().size() << " records to "
              << json.path() << "\n";
  }
  return 0;
}
