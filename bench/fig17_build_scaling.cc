// Regenerates Figure 17: build-side scaling. Workload C with 16-byte
// tuples, |R| = |S| growing until the hash table reaches 2x GPU memory
// (up to 91.5 GiB total). Compares the CPU radix baseline, PCI-e 3.0,
// plain NVLink 2.0 (hash table spills entirely to CPU memory when too
// large), and NVLink 2.0 with the hybrid hash table (Sec. 5.3).

#include <iostream>

#include "bench_support/harness.h"
#include "common/table_printer.h"
#include "common/units.h"
#include "data/workloads.h"
#include "join/cost_model.h"
#include "memory/allocator.h"

namespace pump {
namespace {

using join::HashTablePlacement;
using join::NopaConfig;
using join::NopaJoinModel;
using join::RadixJoinModel;

// GPU memory the join keeps free for working state.
constexpr std::uint64_t kGpuReserve = 1ull << 30;

void Run() {
  bench::PrintBanner(
      std::cout, "Figure 17",
      "Build-side scaling: throughput (G Tuples/s) vs |R| = |S|; hash "
      "table up to 2x GPU memory.");

  hw::SystemProfile ibm = hw::Ac922Profile();
  const hw::SystemProfile intel = hw::XeonProfile();
  const NopaJoinModel nvlink_model(&ibm);
  const NopaJoinModel pcie_model(&intel);
  const RadixJoinModel radix_model(&ibm);
  const std::uint64_t gpu_capacity =
      ibm.topology.memory(hw::kGpu0).capacity.u64();

  TablePrinter table({"|R|=|S| (M)", "HT size", "CPU (PRA)", "PCI-e 3.0",
                      "NVLink 2.0", "NVLink hybrid HT"});
  for (std::uint64_t m : {128, 256, 512, 768, 896, 1024, 1280, 1536, 1792,
                          2048}) {
    const data::WorkloadSpec w = data::WorkloadC16(m << 20, m << 20);
    const double total = static_cast<double>(w.total_tuples());
    const bool fits =
        w.hash_table_bytes() + kGpuReserve <= gpu_capacity;

    const join::JoinTiming cpu = radix_model.Estimate(hw::kCpu0, w);

    NopaConfig base;
    base.device = hw::kGpu0;
    base.r_location = hw::kCpu0;
    base.s_location = hw::kCpu0;

    // Plain placement: GPU memory while it fits, else all in CPU memory
    // (the non-hybrid fallback the paper compares against).
    NopaConfig plain = base;
    plain.hash_table =
        HashTablePlacement::Single(fits ? hw::kGpu0 : hw::kCpu0);
    const join::JoinTiming nv = nvlink_model.Estimate(plain, w).value();

    // Hybrid: greedy GPU-first spill (the allocator of Fig. 8 computes the
    // same fraction the model uses).
    memory::MemoryManager manager(&ibm.topology, /*materialize=*/false);
    Result<memory::Buffer> hybrid_buffer = manager.AllocateHybrid(
        w.hash_table_bytes(), hw::kGpu0, kGpuReserve);
    NopaConfig hybrid = base;
    hybrid.hash_table =
        HashTablePlacement::FromBuffer(hybrid_buffer.value());
    const join::JoinTiming hy = nvlink_model.Estimate(hybrid, w).value();

    NopaConfig pcie = plain;
    pcie.method = transfer::TransferMethod::kZeroCopy;
    pcie.relation_memory = memory::MemoryKind::kPinned;
    const join::JoinTiming pc = pcie_model.Estimate(pcie, w).value();

    table.AddRow(
        {std::to_string(m),
         TablePrinter::FormatDouble(
             static_cast<double>(w.hash_table_bytes()) / kGiB, 1) +
             " GiB" + (fits ? "" : " (spilled)"),
         TablePrinter::FormatDouble(
             ToGTuplesPerSecond(cpu.Throughput(total)), 2),
         TablePrinter::FormatDouble(
             ToGTuplesPerSecond(pc.Throughput(total)), 2),
         TablePrinter::FormatDouble(
             ToGTuplesPerSecond(nv.Throughput(total)), 2),
         TablePrinter::FormatDouble(
             ToGTuplesPerSecond(hy.Throughput(total)), 2)});
  }
  table.Print(std::cout);

  std::cout << "\nPaper shape: PCI-e rides off a cliff (-97%, 20x slower\n"
               "than the CPU) once the table exceeds GPU memory; NVLink\n"
               "degrades but stays within ~13% of the CPU; the hybrid table\n"
               "adds another 1-2.2x and degrades gracefully.\n";
}

}  // namespace
}  // namespace pump

int main() {
  pump::Run();
  return 0;
}
