// Extension (Sec. 6.2): multi-way star-schema joins. The paper sketches
// extending GPU+Het to star queries by building each dimension table on a
// different processor in parallel and broadcasting them; this bench
// quantifies that sketch with the cost model and validates the plan
// functionally at host scale.

#include <iostream>

#include "bench_support/harness.h"
#include "common/table_printer.h"
#include "data/star.h"
#include "hw/system_profile.h"
#include "join/star.h"
#include "join/star_model.h"

namespace pump {
namespace {

void Run() {
  bench::PrintBanner(
      std::cout, "Extension: star-schema joins (Sec. 6.2 sketch)",
      "Fact table of 2^31 rows joined against k dimensions of 2^26 "
      "tuples each; serial vs parallel-build-and-broadcast.");

  const hw::SystemProfile ibm = hw::Ac922Profile();
  const join::StarJoinModel model(&ibm);
  const double fact_rows = static_cast<double>(1ull << 31);

  TablePrinter table({"Dimensions", "Serial build s", "Parallel build s",
                      "Broadcast s", "Probe s", "Speedup"});
  for (std::size_t k : {1u, 2u, 3u, 4u, 6u}) {
    std::vector<join::StarDimension> dims(
        k, join::StarDimension{1ull << 26, 1.0});
    const auto serial =
        model.Estimate(hw::kGpu0, hw::kCpu0, fact_rows, dims, false)
            .value();
    const auto parallel =
        model.Estimate(hw::kGpu0, hw::kCpu0, fact_rows, dims, true).value();
    table.AddRow(
        {std::to_string(k),
         TablePrinter::FormatDouble(serial.build_s.seconds(), 3),
         TablePrinter::FormatDouble(parallel.build_s.seconds(), 3),
         TablePrinter::FormatDouble(parallel.broadcast_s.seconds(), 3),
         TablePrinter::FormatDouble(parallel.probe_s.seconds(), 3),
         TablePrinter::FormatDouble(
             serial.total_s() / parallel.total_s(), 2) +
             "x"});
  }
  table.Print(std::cout);

  // Selectivity ordering ablation: probing the most selective dimension
  // first prunes the other lookups.
  bench::PrintBanner(std::cout, "Probe-order ablation",
                     "3 dimensions, one with 5% selectivity.");
  std::vector<join::StarDimension> dims = {{1ull << 26, 0.05},
                                           {1ull << 26, 1.0},
                                           {1ull << 26, 1.0}};
  const auto ordered =
      model.Estimate(hw::kGpu0, hw::kCpu0, fact_rows, dims, true).value();
  std::vector<join::StarDimension> unordered = {{1ull << 26, 1.0},
                                                {1ull << 26, 1.0},
                                                {1ull << 26, 0.05}};
  // The model sorts by selectivity internally, so both orders match —
  // demonstrating that the optimizer choice is handled.
  const auto sorted =
      model.Estimate(hw::kGpu0, hw::kCpu0, fact_rows, unordered, true)
          .value();
  std::cout << "probe time, selective-first: " << ordered.probe_s.seconds()
            << " s; model-sorted arbitrary input: " << sorted.probe_s.seconds()
            << " s (equal: "
            << (std::abs(ordered.probe_s.seconds() -
                         sorted.probe_s.seconds()) < 1e-9
                    ? "yes"
                    : "no")
            << ")\n";

  // Functional validation at host scale.
  const data::StarSchema schema =
      data::GenerateStarSchema({1 << 14, 1 << 15, 1 << 13}, 1 << 20, 7);
  auto join = join::StarJoin::Build(schema, /*parallel_builds=*/true);
  const join::StarAggregate result = join.value().Probe(schema, 2);
  std::cout << "\nFunctional check (1M fact rows, 3 dims): "
            << result.matches << " matches, checksum " << result.checksum
            << "\n";
}

}  // namespace
}  // namespace pump

int main() {
  pump::Run();
  return 0;
}
