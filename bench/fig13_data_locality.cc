// Regenerates Figure 13: GPU join throughput as the base relations move
// further away (GPU memory -> CPU -> remote CPU -> remote GPU), workloads
// A/B/C scaled to 13/12/10 GiB so everything fits GPU memory; hash table
// in GPU memory.

#include <iostream>

#include "bench_support/harness.h"
#include "common/table_printer.h"
#include "common/units.h"
#include "data/workloads.h"
#include "join/cost_model.h"

namespace pump {
namespace {

using join::HashTablePlacement;
using join::NopaConfig;
using join::NopaJoinModel;

// Paper values (G Tuples/s), Fig. 13: rows = workload, cols = GPU, CPU,
// rCPU, rGPU.
constexpr double kPaper[3][4] = {{4.67, 3.82, 2.52, 2.24},
                                 {19.08, 4.18, 2.61, 2.29},
                                 {2.56, 2.64, 2.59, 2.51}};

void Run() {
  bench::PrintBanner(
      std::cout, "Figure 13",
      "Base-relation locality: throughput (G Tuples/s) with 0-3 "
      "interconnect hops to the data; hash table in GPU memory.");

  const hw::SystemProfile ibm = hw::Ac922Profile();
  const NopaJoinModel model(&ibm);

  const data::WorkloadSpec workloads[] = {
      data::ScaleToBytes(data::WorkloadA(), 13 * kGiB),
      data::ScaleToBytes(data::WorkloadB(), 12 * kGiB),
      data::ScaleToBytes(data::WorkloadC(), 10 * kGiB),
  };
  const char* names[] = {"A (scaled)", "B (scaled)", "C (scaled)"};
  const hw::MemoryNodeId locations[] = {hw::kGpu0, hw::kCpu0, hw::kCpu1,
                                        hw::kGpu1};
  const char* location_names[] = {"GPU", "CPU", "rCPU", "rGPU"};

  TablePrinter table({"Workload", "Location", "Hops", "G Tuples/s",
                      "Paper"});
  for (int w = 0; w < 3; ++w) {
    for (int l = 0; l < 4; ++l) {
      NopaConfig config;
      config.device = hw::kGpu0;
      config.r_location = locations[l];
      config.s_location = locations[l];
      config.hash_table = HashTablePlacement::Single(hw::kGpu0);
      Result<join::JoinTiming> timing =
          model.Estimate(config, workloads[w]);
      const double tput =
          timing.ok()
              ? ToGTuplesPerSecond(timing.value().Throughput(
                    static_cast<double>(workloads[w].total_tuples())))
              : 0.0;
      table.AddRow({names[w], location_names[l], std::to_string(l),
                    TablePrinter::FormatDouble(tput, 2),
                    TablePrinter::FormatDouble(kPaper[w][l], 2)});
    }
  }
  table.Print(std::cout);

  std::cout << "\nShape checks: throughput decreases with hops; the 1->2 hop\n"
               "step costs more than 2->3 (X-Bus binds); workload B is ~5-6x\n"
               "faster when fully GPU-local (hash table hits the L2); C is\n"
               "dominated by random GPU-memory accesses, so locality of the\n"
               "streams matters little.\n";
}

}  // namespace
}  // namespace pump

int main() {
  pump::Run();
  return 0;
}
