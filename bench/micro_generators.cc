// Data-generator microbenchmarks: uniform and Zipf key generation rates
// (the Zipf rejection-inversion sampler is O(1) per draw and must keep up
// with multi-billion-tuple workload generation).

#include "benchmark/benchmark.h"
#include "common/rng.h"
#include "data/generator.h"
#include "data/tpch.h"
#include "data/zipf.h"

namespace pump {
namespace {

void BM_UniformOuter(benchmark::State& state) {
  constexpr std::size_t kTuples = 1 << 20;
  for (auto _ : state) {
    auto relation = data::GenerateOuterUniform<std::int64_t, std::int64_t>(
        kTuples, 1 << 27, 3);
    benchmark::DoNotOptimize(relation);
  }
  state.SetItemsProcessed(state.iterations() * kTuples);
}
BENCHMARK(BM_UniformOuter);

void BM_ZipfSample(benchmark::State& state) {
  const double z = static_cast<double>(state.range(0)) / 100.0;
  data::ZipfGenerator zipf(1u << 27, z);
  Rng rng(17);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Next(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfSample)->Arg(50)->Arg(100)->Arg(175);

void BM_InnerPermutation(benchmark::State& state) {
  constexpr std::size_t kTuples = 1 << 20;
  for (auto _ : state) {
    auto relation =
        data::GenerateInner<std::int64_t, std::int64_t>(kTuples, 5);
    benchmark::DoNotOptimize(relation);
  }
  state.SetItemsProcessed(state.iterations() * kTuples);
}
BENCHMARK(BM_InnerPermutation);

void BM_LineitemQ6(benchmark::State& state) {
  constexpr std::size_t kRows = 1 << 20;
  for (auto _ : state) {
    auto table = data::GenerateLineitemQ6(kRows, 7);
    benchmark::DoNotOptimize(table);
  }
  state.SetItemsProcessed(state.iterations() * kRows);
}
BENCHMARK(BM_LineitemQ6);

}  // namespace
}  // namespace pump
