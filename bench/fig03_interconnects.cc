// Regenerates Figure 3: sequential bandwidth, random (4-byte) bandwidth,
// and latency of every relevant data access path on the IBM and Intel
// systems, derived from the routed topology model.

#include <iostream>
#include <string>

#include "bench_support/harness.h"
#include "common/table_printer.h"
#include "common/units.h"
#include "hw/topology.h"
#include "sim/access_path.h"

namespace pump {
namespace {

struct PathCase {
  std::string label;
  const hw::Topology* topo;
  hw::DeviceId device;
  hw::MemoryNodeId memory;
  double paper_seq;   // GiB/s; <0 = not reported.
  double paper_rand;  // GiB/s of 4-byte reads.
  double paper_lat;   // ns.
};

void Run() {
  bench::PrintBanner(
      std::cout, "Figure 3",
      "Bandwidth and latency of 4-byte reads over every access path "
      "(model-derived vs paper's microbenchmarks).");

  const hw::Topology ibm = hw::IbmAc922();
  const hw::Topology intel = hw::IntelXeonV100();

  const PathCase cases[] = {
      // Fig. 3a: interconnects.
      {"GPU->CPU mem, NVLink 2.0", &ibm, hw::kGpu0, hw::kCpu0, 63, 2.8, 434},
      {"GPU->CPU mem, PCI-e 3.0", &intel, hw::kGpu0, hw::kCpu0, 12, 0.2,
       790},
      {"CPU->rCPU mem, UPI", &intel, hw::kCpu0, hw::kCpu1, 31, 2.0, 121},
      {"CPU->rCPU mem, X-Bus", &ibm, hw::kCpu0, hw::kCpu1, 32, 1.1, 211},
      // Fig. 3b: CPU memory.
      {"CPU local, Xeon", &intel, hw::kCpu0, hw::kCpu0, 81, 2.7, 70},
      {"CPU local, POWER9", &ibm, hw::kCpu0, hw::kCpu0, 117, 3.6, 68},
      // Fig. 3c: GPU memory.
      {"GPU local, V100 HBM2", &ibm, hw::kGpu0, hw::kGpu0, 729, 22.3, 282},
      // Multi-hop paths exercised by Figs. 13/14 (not in Fig. 3).
      {"GPU->rCPU mem (2 hops)", &ibm, hw::kGpu0, hw::kCpu1, -1, -1, -1},
      {"GPU->rGPU mem (3 hops)", &ibm, hw::kGpu0, hw::kGpu1, -1, -1, -1},
      {"CPU->GPU mem, NVLink 2.0", &ibm, hw::kCpu0, hw::kGpu0, -1, -1, -1},
  };

  TablePrinter table({"Path", "Seq GiB/s", "Rand GiB/s", "Latency ns",
                      "Paper seq", "Paper rand", "Paper lat"});
  auto fmt = [](double v, int precision) {
    return v < 0 ? std::string("-") : TablePrinter::FormatDouble(v, precision);
  };
  for (const PathCase& c : cases) {
    const sim::AccessPath path = sim::MustResolve(*c.topo, c.device, c.memory);
    // The paper reports random bandwidth as useful 4-byte payload per
    // second; the model's access rate converts back the same way.
    const double rand_gib = ToGiBPerSecond(path.random_access_rate * Bytes(4.0));
    table.AddRow({c.label, TablePrinter::FormatDouble(ToGiBPerSecond(path.seq_bw), 1),
                  TablePrinter::FormatDouble(rand_gib, 2),
                  TablePrinter::FormatDouble(ToNanoseconds(path.latency), 0),
                  fmt(c.paper_seq, 0), fmt(c.paper_rand, 2),
                  fmt(c.paper_lat, 0)});
  }
  table.Print(std::cout);

  std::cout << "\nObservations (Sec. 3): NVLink 2.0 has ~5x the sequential\n"
               "bandwidth of PCI-e 3.0 and ~2x UPI/X-Bus; its random access\n"
               "rate is ~14x PCI-e 3.0; its latency is 6x CPU memory but\n"
               "only ~54% above GPU memory.\n";
}

}  // namespace
}  // namespace pump

int main() {
  pump::Run();
  return 0;
}
