// Ablation (Secs. 3/5.2 discussion): no-partitioning join vs the
// partitioning-based GPU join that PCI-e-era systems use [89], at in-core
// and out-of-core hash-table sizes on both interconnects. Shows the
// paper's core argument: a fast interconnect turns the partition passes
// into pure overhead, while on PCI-e they are the only way to scale the
// build side.

#include <iostream>

#include "bench_support/harness.h"
#include "common/table_printer.h"
#include "common/units.h"
#include "data/workloads.h"
#include "join/cost_model.h"
#include "join/partitioned_gpu.h"

namespace pump {
namespace {

using join::HashTablePlacement;
using join::NopaConfig;
using join::NopaJoinModel;
using join::PartitionedGpuJoinModel;
using transfer::TransferMethod;

void Run() {
  bench::PrintBanner(
      std::cout, "Ablation: NOPA vs partitioned GPU join",
      "G Tuples/s; NOPA uses the hybrid table when the build side "
      "exceeds GPU memory.");

  hw::SystemProfile ibm = hw::Ac922Profile();
  hw::SystemProfile intel = hw::XeonProfile();
  const NopaJoinModel nopa_ibm(&ibm);
  const NopaJoinModel nopa_intel(&intel);
  const PartitionedGpuJoinModel part_ibm(&ibm);
  const PartitionedGpuJoinModel part_intel(&intel);
  const std::uint64_t gpu_capacity =
      ibm.topology.memory(hw::kGpu0).capacity.u64();

  TablePrinter table({"|R|=|S| (M)", "HT", "NVLink NOPA",
                      "NVLink partitioned", "PCI-e NOPA",
                      "PCI-e partitioned"});
  for (std::uint64_t m : {128, 512, 896, 1280, 2048}) {
    const data::WorkloadSpec w = data::WorkloadC16(m << 20, m << 20);
    const double total = static_cast<double>(w.total_tuples());
    const bool fits = w.hash_table_bytes() + (1ull << 30) <= gpu_capacity;

    auto nopa = [&](const NopaJoinModel& model, TransferMethod method) {
      NopaConfig config;
      config.device = hw::kGpu0;
      config.r_location = hw::kCpu0;
      config.s_location = hw::kCpu0;
      config.method = method;
      config.relation_memory = transfer::TraitsOf(method).required_memory;
      if (fits) {
        config.hash_table = HashTablePlacement::Single(hw::kGpu0);
      } else {
        const double fraction =
            static_cast<double>(gpu_capacity - (1ull << 30)) /
            static_cast<double>(w.hash_table_bytes());
        config.hash_table =
            HashTablePlacement::Hybrid(hw::kGpu0, hw::kCpu0, fraction);
      }
      Result<join::JoinTiming> timing = model.Estimate(config, w);
      return TablePrinter::FormatDouble(
          ToGTuplesPerSecond(timing.value().Throughput(total)), 2);
    };
    auto partitioned = [&](const PartitionedGpuJoinModel& model,
                           TransferMethod method) {
      Result<join::JoinTiming> timing =
          model.Estimate(hw::kCpu0, hw::kGpu0, method, w);
      return TablePrinter::FormatDouble(
          ToGTuplesPerSecond(timing.value().Throughput(total)), 2);
    };

    table.AddRow({std::to_string(m),
                  TablePrinter::FormatDouble(
                      static_cast<double>(w.hash_table_bytes()) / kGiB, 0) +
                      " GiB" + (fits ? "" : "*"),
                  nopa(nopa_ibm, TransferMethod::kCoherence),
                  partitioned(part_ibm, TransferMethod::kPinnedCopy),
                  nopa(nopa_intel, TransferMethod::kZeroCopy),
                  partitioned(part_intel, TransferMethod::kPinnedCopy)});
  }
  table.Print(std::cout);
  std::cout << "\n(* = hash table exceeds GPU memory.)\n"
               "Expected: on PCI-e the partitioned join dominates "
               "out-of-core (NOPA collapses to random accesses over the "
               "interconnect); on NVLink 2.0 the NOPA join with the "
               "hybrid table wins everywhere — the paper's motivation "
               "for reconsidering no-partitioning joins (Sec. 5.2).\n";
}

}  // namespace
}  // namespace pump

int main() {
  pump::Run();
  return 0;
}
