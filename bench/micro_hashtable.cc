// Functional microbenchmarks of the hash tables (host execution): insert
// and probe rates for the perfect table vs open addressing — the
// perfect-vs-general ablation called out in DESIGN.md.

#include <cstdint>
#include <vector>

#include "benchmark/benchmark.h"
#include "common/rng.h"
#include "data/generator.h"
#include "hash/hash_table.h"

namespace pump {
namespace {

constexpr std::size_t kTableSize = 1 << 20;

void BM_PerfectInsert(benchmark::State& state) {
  const auto inner =
      data::GenerateInner<std::int64_t, std::int64_t>(kTableSize, 1);
  for (auto _ : state) {
    hash::PerfectHashTable<std::int64_t, std::int64_t> table(kTableSize);
    for (std::size_t i = 0; i < kTableSize; ++i) {
      benchmark::DoNotOptimize(
          table.Insert(inner.keys[i], inner.payloads[i]));
    }
  }
  state.SetItemsProcessed(state.iterations() * kTableSize);
}
BENCHMARK(BM_PerfectInsert);

void BM_LinearProbingInsert(benchmark::State& state) {
  const double load_factor = static_cast<double>(state.range(0)) / 100.0;
  const auto inner =
      data::GenerateInner<std::int64_t, std::int64_t>(kTableSize, 1);
  for (auto _ : state) {
    hash::LinearProbingHashTable<std::int64_t, std::int64_t> table(
        kTableSize, load_factor);
    for (std::size_t i = 0; i < kTableSize; ++i) {
      benchmark::DoNotOptimize(
          table.Insert(inner.keys[i], inner.payloads[i]));
    }
  }
  state.SetItemsProcessed(state.iterations() * kTableSize);
}
BENCHMARK(BM_LinearProbingInsert)->Arg(25)->Arg(50)->Arg(75);

void BM_PerfectProbe(benchmark::State& state) {
  const auto inner =
      data::GenerateInner<std::int64_t, std::int64_t>(kTableSize, 1);
  const auto outer = data::GenerateOuterUniform<std::int64_t, std::int64_t>(
      1 << 22, kTableSize, 2);
  hash::PerfectHashTable<std::int64_t, std::int64_t> table(kTableSize);
  for (std::size_t i = 0; i < kTableSize; ++i) {
    (void)table.Insert(inner.keys[i], inner.payloads[i]);
  }
  for (auto _ : state) {
    std::uint64_t sum = 0;
    for (std::int64_t key : outer.keys) {
      std::int64_t value;
      if (table.Lookup(key, &value)) sum += value;
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * outer.size());
}
BENCHMARK(BM_PerfectProbe);

void BM_LinearProbingProbe(benchmark::State& state) {
  const auto inner =
      data::GenerateInner<std::int64_t, std::int64_t>(kTableSize, 1);
  const auto outer = data::GenerateOuterUniform<std::int64_t, std::int64_t>(
      1 << 22, kTableSize, 2);
  hash::LinearProbingHashTable<std::int64_t, std::int64_t> table(kTableSize,
                                                                 0.5);
  for (std::size_t i = 0; i < kTableSize; ++i) {
    (void)table.Insert(inner.keys[i], inner.payloads[i]);
  }
  for (auto _ : state) {
    std::uint64_t sum = 0;
    for (std::int64_t key : outer.keys) {
      std::int64_t value;
      if (table.Lookup(key, &value)) sum += value;
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * outer.size());
}
BENCHMARK(BM_LinearProbingProbe);

void BM_ProbeMissRate(benchmark::State& state) {
  // Probe with a configurable match fraction (Fig. 20's knob,
  // functionally): misses are cheaper in the perfect table.
  const double selectivity = static_cast<double>(state.range(0)) / 100.0;
  const auto inner =
      data::GenerateInner<std::int64_t, std::int64_t>(kTableSize, 1);
  const auto outer =
      data::GenerateOuterSelective<std::int64_t, std::int64_t>(
          1 << 22, kTableSize, selectivity, 3);
  hash::PerfectHashTable<std::int64_t, std::int64_t> table(kTableSize);
  for (std::size_t i = 0; i < kTableSize; ++i) {
    (void)table.Insert(inner.keys[i], inner.payloads[i]);
  }
  for (auto _ : state) {
    std::uint64_t matches = 0;
    for (std::int64_t key : outer.keys) {
      std::int64_t value;
      matches += table.Lookup(key, &value);
    }
    benchmark::DoNotOptimize(matches);
  }
  state.SetItemsProcessed(state.iterations() * outer.size());
}
BENCHMARK(BM_ProbeMissRate)->Arg(0)->Arg(50)->Arg(100);

}  // namespace
}  // namespace pump
