// Functional microbenchmarks of the hash tables (host execution): insert
// and probe rates for the perfect table vs open addressing — the
// perfect-vs-general ablation called out in DESIGN.md — plus the
// scalar-vs-interleaved-vs-SIMD probe records the dispatch work is
// judged by.
//
// Two harnesses share this binary. The google-benchmark suite keeps the
// historical insert/probe/miss-rate numbers. A hand-rolled section runs
// first and emits machine-readable `ht_probe_ns` records (variants:
// scalar Lookup loop, interleaved ProbeBatch under a forced-scalar
// dispatch scope, and ProbeBatch under the host's auto dispatch) via
// --json=<path> for scripts/bench_trajectory.sh. --records-only skips
// the google-benchmark suite (the trajectory script uses this);
// --quick shrinks the record sizes to smoke-test proportions.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_support/harness.h"
#include "bench_support/json_writer.h"
#include "benchmark/benchmark.h"
#include "common/cpu_features.h"
#include "common/rng.h"
#include "common/statistics.h"
#include "data/generator.h"
#include "hash/hash_table.h"

namespace pump {
namespace {

constexpr std::size_t kTableSize = 1 << 20;

void BM_PerfectInsert(benchmark::State& state) {
  const auto inner =
      data::GenerateInner<std::int64_t, std::int64_t>(kTableSize, 1);
  for (auto _ : state) {
    hash::PerfectHashTable<std::int64_t, std::int64_t> table(kTableSize);
    for (std::size_t i = 0; i < kTableSize; ++i) {
      benchmark::DoNotOptimize(
          table.Insert(inner.keys[i], inner.payloads[i]));
    }
  }
  state.SetItemsProcessed(state.iterations() * kTableSize);
}
BENCHMARK(BM_PerfectInsert);

void BM_LinearProbingInsert(benchmark::State& state) {
  const double load_factor = static_cast<double>(state.range(0)) / 100.0;
  const auto inner =
      data::GenerateInner<std::int64_t, std::int64_t>(kTableSize, 1);
  for (auto _ : state) {
    hash::LinearProbingHashTable<std::int64_t, std::int64_t> table(
        kTableSize, load_factor);
    for (std::size_t i = 0; i < kTableSize; ++i) {
      benchmark::DoNotOptimize(
          table.Insert(inner.keys[i], inner.payloads[i]));
    }
  }
  state.SetItemsProcessed(state.iterations() * kTableSize);
}
BENCHMARK(BM_LinearProbingInsert)->Arg(25)->Arg(50)->Arg(75);

void BM_PerfectProbe(benchmark::State& state) {
  const auto inner =
      data::GenerateInner<std::int64_t, std::int64_t>(kTableSize, 1);
  const auto outer = data::GenerateOuterUniform<std::int64_t, std::int64_t>(
      1 << 22, kTableSize, 2);
  hash::PerfectHashTable<std::int64_t, std::int64_t> table(kTableSize);
  for (std::size_t i = 0; i < kTableSize; ++i) {
    (void)table.Insert(inner.keys[i], inner.payloads[i]);
  }
  for (auto _ : state) {
    std::uint64_t sum = 0;
    for (std::int64_t key : outer.keys) {
      std::int64_t value;
      if (table.Lookup(key, &value)) sum += value;
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * outer.size());
}
BENCHMARK(BM_PerfectProbe);

void BM_LinearProbingProbe(benchmark::State& state) {
  const auto inner =
      data::GenerateInner<std::int64_t, std::int64_t>(kTableSize, 1);
  const auto outer = data::GenerateOuterUniform<std::int64_t, std::int64_t>(
      1 << 22, kTableSize, 2);
  hash::LinearProbingHashTable<std::int64_t, std::int64_t> table(kTableSize,
                                                                 0.5);
  for (std::size_t i = 0; i < kTableSize; ++i) {
    (void)table.Insert(inner.keys[i], inner.payloads[i]);
  }
  for (auto _ : state) {
    std::uint64_t sum = 0;
    for (std::int64_t key : outer.keys) {
      std::int64_t value;
      if (table.Lookup(key, &value)) sum += value;
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * outer.size());
}
BENCHMARK(BM_LinearProbingProbe);

void BM_ProbeMissRate(benchmark::State& state) {
  // Probe with a configurable match fraction (Fig. 20's knob,
  // functionally): misses are cheaper in the perfect table.
  const double selectivity = static_cast<double>(state.range(0)) / 100.0;
  const auto inner =
      data::GenerateInner<std::int64_t, std::int64_t>(kTableSize, 1);
  const auto outer =
      data::GenerateOuterSelective<std::int64_t, std::int64_t>(
          1 << 22, kTableSize, selectivity, 3);
  hash::PerfectHashTable<std::int64_t, std::int64_t> table(kTableSize);
  for (std::size_t i = 0; i < kTableSize; ++i) {
    (void)table.Insert(inner.keys[i], inner.payloads[i]);
  }
  for (auto _ : state) {
    std::uint64_t matches = 0;
    for (std::int64_t key : outer.keys) {
      std::int64_t value;
      matches += table.Lookup(key, &value);
    }
    benchmark::DoNotOptimize(matches);
  }
  state.SetItemsProcessed(state.iterations() * outer.size());
}
BENCHMARK(BM_ProbeMissRate)->Arg(0)->Arg(50)->Arg(100);

// --- Hand-rolled dispatch-variant records ---------------------------------

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

double Mean(const std::vector<double>& samples) {
  RunningStats stats;
  for (double sample : samples) stats.Add(sample);
  return stats.mean();
}

/// Times the three probe variants of `table` over `probes` and records
/// `ht_probe_ns` per variant plus the simd-vs-scalar speedup. All three
/// must agree on the match count and the found/value output streams —
/// disagreement is a correctness bug, not noise, so it aborts the bench.
template <typename Table>
void RecordProbeVariants(bench::JsonWriter* json,
                         const std::string& table_name, const Table& table,
                         const std::vector<std::int64_t>& probes, int runs) {
  const std::size_t count = probes.size();
  std::vector<std::int64_t> values(count);
  std::vector<char> found_bytes(count);  // vector<bool> has no data().
  bool* found = reinterpret_cast<bool*>(found_bytes.data());

  std::uint64_t scalar_matches = 0;
  const std::vector<double> scalar =
      bench::RepeatSamples(runs, bench::kDefaultWarmup, [&] {
        scalar_matches = 0;
        const auto start = Clock::now();
        for (std::size_t i = 0; i < count; ++i) {
          std::int64_t value = 0;
          found[i] = table.Lookup(probes[i], &value);
          if (found[i]) {
            ++scalar_matches;
            values[i] = value;
          } else {
            values[i] = 0;
          }
        }
        return SecondsSince(start) * 1e9 / static_cast<double>(count);
      });
  const std::vector<std::int64_t> ref_values = values;
  const std::vector<char> ref_found = found_bytes;

  std::uint64_t interleaved_matches = 0;
  std::vector<double> interleaved;
  {
    common::ScopedForceScalar scalar_dispatch;
    interleaved = bench::RepeatSamples(runs, bench::kDefaultWarmup, [&] {
      std::fill(values.begin(), values.end(), 0);
      const auto start = Clock::now();
      interleaved_matches =
          table.ProbeBatch(probes.data(), count, values.data(), found);
      return SecondsSince(start) * 1e9 / static_cast<double>(count);
    });
  }
  const bool interleaved_identical =
      values == ref_values && found_bytes == ref_found;

  std::uint64_t simd_matches = 0;
  const std::vector<double> simd =
      bench::RepeatSamples(runs, bench::kDefaultWarmup, [&] {
        std::fill(values.begin(), values.end(), 0);
        const auto start = Clock::now();
        simd_matches =
            table.ProbeBatch(probes.data(), count, values.data(), found);
        return SecondsSince(start) * 1e9 / static_cast<double>(count);
      });
  const bool simd_identical =
      values == ref_values && found_bytes == ref_found;

  if (scalar_matches != interleaved_matches ||
      scalar_matches != simd_matches || !interleaved_identical ||
      !simd_identical) {
    std::cerr << "FATAL: " << table_name
              << " probe variants disagree (scalar=" << scalar_matches
              << " interleaved=" << interleaved_matches
              << " simd=" << simd_matches
              << " outputs_identical=" << interleaved_identical << "/"
              << simd_identical << ")\n";
    std::exit(1);
  }

  const std::string config =
      "table=" + table_name + " slots=" + std::to_string(table.capacity()) +
      " probes=" + std::to_string(count);
  const std::string dispatch =
      common::SimdDispatchName(common::ActiveSimdDispatch());
  const double scalar_mean = Mean(scalar);
  const double simd_mean = Mean(simd);
  const double simd_speedup = simd_mean > 0.0 ? scalar_mean / simd_mean : 0.0;
  std::cout << "  " << config << "\n"
            << "    scalar:      " << scalar_mean << " ns/probe\n"
            << "    interleaved: " << Mean(interleaved) << " ns/probe\n"
            << "    simd (" << dispatch << "): " << simd_mean
            << " ns/probe";
  std::printf("  (%.2fx over scalar)\n", simd_speedup);
  json->RecordSamples("ht_probe_ns", "scalar " + config, scalar);
  json->RecordSamples("ht_probe_ns", "interleaved " + config, interleaved);
  json->RecordSamples("ht_probe_ns", "simd " + config, simd);
  json->Record("ht_probe_simd_speedup", "dispatch=" + dispatch + " " + config,
               simd_speedup, 0.0, runs);
}

void RunProbeRecords(bench::JsonWriter* json, bool quick) {
  const std::size_t entries = quick ? (1 << 14) : (1 << 21);
  const std::size_t count = quick ? (1 << 14) : (1 << 22);
  // Bumped from kPaperRuns: the ns/probe numbers feed the cost-model
  // recalibration, and on shared hosts 10 runs left stderr too wide.
  const int runs = quick ? 3 : 15;

  bench::PrintBanner(
      std::cout, "micro_hashtable/probe_dispatch",
      "ns/probe over " + std::to_string(count) + " uniform probes into " +
          std::to_string(entries) +
          "-entry tables: scalar Lookup loop vs interleaved-prefetch "
          "ProbeBatch (forced-scalar dispatch) vs auto dispatch");

  const auto inner =
      data::GenerateInner<std::int64_t, std::int64_t>(entries, 1);
  const auto outer = data::GenerateOuterUniform<std::int64_t, std::int64_t>(
      count, entries, 2);

  hash::PerfectHashTable<std::int64_t, std::int64_t> perfect(entries);
  hash::LinearProbingHashTable<std::int64_t, std::int64_t> linear(entries,
                                                                  0.5);
  for (std::size_t i = 0; i < entries; ++i) {
    (void)perfect.Insert(inner.keys[i], inner.payloads[i]);
    (void)linear.Insert(inner.keys[i], inner.payloads[i]);
  }
  RecordProbeVariants(json, "perfect", perfect, outer.keys, runs);
  RecordProbeVariants(json, "linear", linear, outer.keys, runs);
}

}  // namespace
}  // namespace pump

int main(int argc, char** argv) {
  pump::bench::JsonWriter json =
      pump::bench::JsonWriter::FromArgs(&argc, argv);
  bool quick = false;
  bool records_only = false;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--records-only") {
      records_only = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;

  pump::RunProbeRecords(&json, quick);
  if (!json.Write()) {
    std::cerr << "failed to write " << json.path() << "\n";
    return 1;
  }
  if (json.active()) {
    std::cout << "\nwrote " << json.records().size() << " records to "
              << json.path() << "\n";
  }
  if (records_only) return 0;

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
