// Regenerates Table 2: the workload definitions, plus a functional
// validation at host scale (generated data matches every property).

#include <iostream>

#include "bench_support/harness.h"
#include "common/table_printer.h"
#include "common/units.h"
#include "data/generator.h"
#include "data/workloads.h"

namespace pump {
namespace {

void Run() {
  bench::PrintBanner(std::cout, "Table 2",
                     "Workload overview (A from [10], C from [54], both "
                     "scaled 8x; B = A with a cache-resident R).");

  TablePrinter table({"Property", "A", "B", "C"});
  const data::WorkloadSpec a = data::WorkloadA();
  const data::WorkloadSpec b = data::WorkloadB();
  const data::WorkloadSpec c = data::WorkloadC();
  auto u64 = [](std::uint64_t v) { return std::to_string(v); };
  auto gib = [](std::uint64_t v) {
    return TablePrinter::FormatDouble(static_cast<double>(v) / kGiB, 2) +
           " GiB";
  };
  table.AddRow({"key / payload",
                u64(a.key_bytes) + " / " + u64(a.payload_bytes) + " bytes",
                u64(b.key_bytes) + " / " + u64(b.payload_bytes) + " bytes",
                u64(c.key_bytes) + " / " + u64(c.payload_bytes) + " bytes"});
  table.AddRow({"cardinality of R", "2^27 tuples", "2^18 tuples",
                "1024e6 tuples"});
  table.AddRow({"cardinality of S", "2^31 tuples", "2^31 tuples",
                "1024e6 tuples"});
  table.AddRow({"total size of R", gib(a.r_bytes()), "4.00 MiB",
                gib(c.r_bytes())});
  table.AddRow({"total size of S", gib(a.s_bytes()), gib(b.s_bytes()),
                gib(c.s_bytes())});
  table.AddRow({"hash table size", gib(a.hash_table_bytes()),
                "4.00 MiB", gib(c.hash_table_bytes())});
  table.Print(std::cout);

  // Functional validation at host scale: unique dense keys, uniform FK
  // distribution, exactly one match per S tuple.
  const std::size_t n = 1u << 16;
  const auto inner = data::GenerateInner<std::int64_t, std::int64_t>(n, 1);
  const auto outer =
      data::GenerateOuterUniform<std::int64_t, std::int64_t>(1u << 18, n, 2);
  std::vector<std::uint32_t> histogram(n, 0);
  for (std::int64_t key : outer.keys) ++histogram[key];
  std::uint32_t max_count = 0;
  for (std::uint32_t count : histogram) max_count = std::max(max_count, count);
  std::cout << "\nFunctional check at 1/2048 scale: |R| = " << inner.size()
            << " unique keys, |S| = " << outer.size()
            << " uniform FKs, max keys per R tuple = " << max_count
            << " (mean 4; the max over 64k Poisson(4) samples lands "
               "around 14).\n";
}

}  // namespace
}  // namespace pump

int main() {
  pump::Run();
  return 0;
}
