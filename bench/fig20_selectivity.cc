// Regenerates Figure 20: the effect of join selectivity (0..100%) on
// throughput, workload A, for CPU NOPA, PCI-e 3.0, and NVLink 2.0, with
// the hash table in GPU memory and in CPU memory.

#include <cmath>
#include <iostream>

#include "bench_support/harness.h"
#include "common/table_printer.h"
#include "common/units.h"
#include "data/workloads.h"
#include "join/cost_model.h"

namespace pump {
namespace {

using join::HashTablePlacement;
using join::NopaConfig;
using join::NopaJoinModel;

void Run() {
  bench::PrintBanner(
      std::cout, "Figure 20",
      "Join selectivity sweep (workload A): throughput (G Tuples/s); "
      "matches load the value cache lines, misses do not.");

  const hw::SystemProfile ibm = hw::Ac922Profile();
  const hw::SystemProfile intel = hw::XeonProfile();
  const NopaJoinModel ibm_model(&ibm);
  const NopaJoinModel intel_model(&intel);

  TablePrinter table({"Selectivity", "CPU (NOPA)", "NVLink HT=GPU",
                      "NVLink HT=CPU", "PCI-e HT=GPU", "PCI-e HT=CPU",
                      "Value lines loaded"});
  for (double sel : {0.0, 0.1, 0.25, 0.5, 0.75, 1.0}) {
    data::WorkloadSpec w = data::WorkloadA();
    w.selectivity = sel;

    auto run = [&](const NopaJoinModel& model, hw::DeviceId device,
                   hw::MemoryNodeId ht,
                   transfer::TransferMethod method) {
      NopaConfig config;
      config.device = device;
      config.r_location = hw::kCpu0;
      config.s_location = hw::kCpu0;
      config.hash_table = HashTablePlacement::Single(ht);
      config.method = method;
      config.relation_memory =
          method == transfer::TransferMethod::kZeroCopy
              ? memory::MemoryKind::kPinned
              : memory::MemoryKind::kPageable;
      Result<join::JoinTiming> timing = model.Estimate(config, w);
      return timing.ok()
                 ? TablePrinter::FormatDouble(
                       ToGTuplesPerSecond(timing.value().Throughput(
                           static_cast<double>(w.total_tuples()))),
                       2)
                 : std::string("n/a");
    };

    // "At 10% selectivity, 81.5% of values are loaded" (Sec. 7.2.9):
    // P(value line loaded) = 1 - (1 - sel)^(values per 128 B line).
    const double p_line = 1.0 - std::pow(1.0 - sel, 128.0 / 8.0);
    table.AddRow(
        {TablePrinter::FormatDouble(sel * 100, 0) + "%",
         run(ibm_model, hw::kCpu0, hw::kCpu0,
             transfer::TransferMethod::kCoherence),
         run(ibm_model, hw::kGpu0, hw::kGpu0,
             transfer::TransferMethod::kCoherence),
         run(ibm_model, hw::kGpu0, hw::kCpu0,
             transfer::TransferMethod::kCoherence),
         run(intel_model, hw::kGpu0, hw::kGpu0,
             transfer::TransferMethod::kZeroCopy),
         run(intel_model, hw::kGpu0, hw::kCpu0,
             transfer::TransferMethod::kZeroCopy),
         TablePrinter::FormatDouble(p_line * 100, 1) + "%"});
  }
  table.Print(std::cout);

  std::cout << "\nPaper shape: throughput decreases with selectivity; the\n"
               "largest drop (~30%) is NVLink with the GPU-memory table,\n"
               "PCI-e with a CPU table moves only ~7%. Both interconnects\n"
               "exceed what raw bandwidth would suggest at low selectivity\n"
               "because unmatched probes skip the value lines.\n";
}

}  // namespace
}  // namespace pump

int main() {
  pump::Run();
  return 0;
}
