#!/usr/bin/env bash
# Runs the execution-runtime micro benches and merges their JSON records
# into BENCH_micro.json at the repo root, so perf trajectories are
# diffable commit over commit.
#
#   micro_parallel  — hand-rolled harness, emits records via --json
#   micro_engine    — hand-rolled harness: fused executor vs plan IR per
#                     SSB query and Q6, incl. the plan-IR overhead records
#   micro_morsel    — google-benchmark, emits benchmark_out JSON that is
#                     converted to the same {experiment, config, mean,
#                     stderr, runs} record shape
#
# Usage: scripts/bench_trajectory.sh [-j N] [-q]
#   -j N  build parallelism (default: nproc)
#   -q    quick mode: shrunken sizes, for smoke-testing the pipeline
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"
QUICK=""
while getopts "j:q" opt; do
  case "$opt" in
    j) JOBS="$OPTARG" ;;
    q) QUICK="--quick" ;;
    *) echo "usage: $0 [-j N] [-q]" >&2; exit 2 ;;
  esac
done

say() { printf '\n==> %s\n' "$*"; }

say "build (Release)"
cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release \
      -DPUMP_SANITIZE="" >/dev/null
cmake --build build-release -j "$JOBS" \
      --target micro_parallel micro_engine micro_morsel

OUT_DIR="$(mktemp -d)"
trap 'rm -rf "$OUT_DIR"' EXIT

say "run micro_parallel ${QUICK:-"(full sizes)"}"
./build-release/bench/micro_parallel ${QUICK} \
    --json="$OUT_DIR/micro_parallel.json"

say "run micro_engine ${QUICK:-"(full sizes)"}"
./build-release/bench/micro_engine ${QUICK} \
    --json="$OUT_DIR/micro_engine.json"

say "run micro_morsel"
./build-release/bench/micro_morsel \
    --benchmark_out="$OUT_DIR/micro_morsel_gbench.json" \
    --benchmark_out_format=json \
    ${QUICK:+--benchmark_min_time=0.05s} >/dev/null

say "merge into BENCH_micro.json"
# Merge, never overwrite wholesale: records from this run replace prior
# records with the same (experiment, config) key; every other prior
# record is preserved. An aborted or partial run therefore cannot erase
# trajectory data it did not itself regenerate. The write is atomic
# (temp + rename) so a crash mid-write keeps the old file intact.
python3 - "$OUT_DIR/micro_parallel.json" \
           "$OUT_DIR/micro_engine.json" \
           "$OUT_DIR/micro_morsel_gbench.json" <<'PY'
import json
import os
import sys

records = []

# micro_parallel and micro_engine already emit the target record shape.
with open(sys.argv[1]) as f:
    records.extend(json.load(f))
with open(sys.argv[2]) as f:
    records.extend(json.load(f))

# Convert google-benchmark output: one record per benchmark entry, the
# benchmark name split into experiment (binary/family) and config (args).
with open(sys.argv[3]) as f:
    gbench = json.load(f)
for entry in gbench.get("benchmarks", []):
    if entry.get("run_type") == "aggregate":
        continue
    name, _, config = entry["name"].partition("/")
    records.append({
        "experiment": "micro_morsel/" + name,
        "config": config,
        "mean": entry.get("real_time", 0.0),
        "stderr": 0.0,
        "runs": int(entry.get("repetitions", 1) or 1),
    })

merged = {}
kept = 0
if os.path.exists("BENCH_micro.json"):
    try:
        with open("BENCH_micro.json") as f:
            for record in json.load(f):
                merged[(record["experiment"], record["config"])] = record
        kept = len(merged)
    except (json.JSONDecodeError, KeyError, TypeError) as error:
        print(f"warning: ignoring unreadable BENCH_micro.json ({error})",
              file=sys.stderr)
for record in records:
    merged[(record["experiment"], record["config"])] = record

out = sorted(merged.values(),
             key=lambda r: (r["experiment"], r["config"]))
tmp_path = "BENCH_micro.json.tmp"
with open(tmp_path, "w") as f:
    json.dump(out, f, indent=2)
    f.write("\n")
os.replace(tmp_path, "BENCH_micro.json")
preserved = len(out) - len({(r["experiment"], r["config"])
                            for r in records})
print(f"wrote {len(out)} records to BENCH_micro.json "
      f"({len(records)} fresh, {preserved} preserved of {kept} prior)")
PY

say "done"
