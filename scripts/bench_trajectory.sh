#!/usr/bin/env bash
# Runs the execution-runtime micro benches and merges their JSON records
# into BENCH_micro.json at the repo root, so perf trajectories are
# diffable commit over commit.
#
#   micro_parallel  — hand-rolled harness, emits records via --json
#   micro_engine    — hand-rolled harness: fused executor vs plan IR per
#                     SSB query and Q6, incl. the plan-IR overhead records
#   micro_hashtable — records section only (--records-only): scalar vs
#                     interleaved vs SIMD ht_probe_ns per table kind
#   micro_join      — records section only (--records-only): direct
#                     scatter vs software write-combining partition pass
#   micro_morsel    — google-benchmark, emits benchmark_out JSON that is
#                     converted to the same {experiment, config, mean,
#                     stderr, runs} record shape
#   servebench      — serving-layer closed-loop driver: qps, p50/p99
#                     latency, cache hit rate, shed/cancel/deadline
#                     counters
#   ext_multi_gpu_mesh — sharded-join scaling over N-GPU meshes: modelled
#                     speedup and exchange cost per {ring, crossbar,
#                     host-bounce} x {1,2,4,8} GPUs, results checked
#                     bit-identical to the CPU reference
#
# A bench binary that crashes mid-run (or writes empty/unparseable JSON)
# fails the whole script with a named, non-zero error — partial records
# are never merged into the trajectory.
#
# Usage: scripts/bench_trajectory.sh [-j N] [-q] [--check]
#   -j N     build parallelism (default: nproc)
#   -q       quick mode: shrunken sizes, for smoke-testing the pipeline
#   --check  regression watchdog: compare this run's fresh records
#            against the committed BENCH_micro.json (median/MAD band via
#            scripts/bench_check.py, band knobs BENCH_BAND_PCT /
#            BENCH_MAD_K) and exit nonzero on regression. Read-only —
#            the baseline is not rewritten.
set -euo pipefail

cd "$(dirname "$0")/.."

CHECK=""
ARGS=()
for arg in "$@"; do
  case "$arg" in
    --check) CHECK=1 ;;
    *) ARGS+=("$arg") ;;
  esac
done
set -- ${ARGS[@]+"${ARGS[@]}"}

JOBS="$(nproc 2>/dev/null || echo 4)"
QUICK=""
while getopts "j:qc" opt; do
  case "$opt" in
    j) JOBS="$OPTARG" ;;
    q) QUICK="--quick" ;;
    c) CHECK=1 ;;
    *) echo "usage: $0 [-j N] [-q] [--check]" >&2; exit 2 ;;
  esac
done

say() { printf '\n==> %s\n' "$*"; }

# Runs one bench binary and fails LOUDLY if it dies mid-run. `set -e`
# alone reports the bare exit status of whatever happened to run last; a
# segfaulting bench would leave no hint of which binary crashed or that
# the trajectory merge was skipped. Name the casualty, keep the partial
# JSON out of BENCH_micro.json, exit non-zero.
run_bench() {
  local label="$1"
  shift
  say "run $label"
  local status=0
  "$@" || status=$?
  if [ "$status" -ne 0 ]; then
    echo "FAIL: $label exited with status $status mid-run;" \
         "no records merged into BENCH_micro.json" >&2
    exit "$status"
  fi
}

# A bench that exits zero but leaves an empty or unparseable JSON file
# also crashed, just politely. Refuse to merge its output.
check_json() {
  local label="$1" path="$2"
  python3 - "$path" <<'PY' || { echo "FAIL: $label wrote bad JSON" >&2; exit 1; }
import json
import sys

with open(sys.argv[1]) as f:
    records = json.load(f)
assert isinstance(records, (list, dict)) and records, "no records"
PY
}

say "build (Release)"
cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release \
      -DPUMP_SANITIZE="" >/dev/null
cmake --build build-release -j "$JOBS" \
      --target micro_parallel micro_engine micro_hashtable micro_join \
               micro_morsel servebench ext_multi_gpu_mesh

OUT_DIR="$(mktemp -d)"
trap 'rm -rf "$OUT_DIR"' EXIT

run_bench "micro_parallel ${QUICK:-"(full sizes)"}" \
    ./build-release/bench/micro_parallel ${QUICK} \
    --json="$OUT_DIR/micro_parallel.json"
check_json micro_parallel "$OUT_DIR/micro_parallel.json"

run_bench "micro_engine ${QUICK:-"(full sizes)"}" \
    ./build-release/bench/micro_engine ${QUICK} \
    --json="$OUT_DIR/micro_engine.json"
check_json micro_engine "$OUT_DIR/micro_engine.json"

run_bench "micro_hashtable ${QUICK:-"(full sizes)"}" \
    ./build-release/bench/micro_hashtable --records-only ${QUICK} \
    --json="$OUT_DIR/micro_hashtable.json"
check_json micro_hashtable "$OUT_DIR/micro_hashtable.json"

run_bench "micro_join ${QUICK:-"(full sizes)"}" \
    ./build-release/bench/micro_join --records-only ${QUICK} \
    --json="$OUT_DIR/micro_join.json"
check_json micro_join "$OUT_DIR/micro_join.json"

run_bench "micro_morsel" \
    ./build-release/bench/micro_morsel \
    --benchmark_out="$OUT_DIR/micro_morsel_gbench.json" \
    --benchmark_out_format=json \
    ${QUICK:+--benchmark_min_time=0.05}
check_json micro_morsel "$OUT_DIR/micro_morsel_gbench.json"

run_bench "servebench ${QUICK:-"(full sizes)"}" \
    ./build-release/tools/servebench ${QUICK} \
    --json="$OUT_DIR/servebench.json"
check_json servebench "$OUT_DIR/servebench.json"

run_bench "ext_multi_gpu_mesh ${QUICK:-"(full sizes)"}" \
    ./build-release/bench/ext_multi_gpu_mesh ${QUICK} \
    --json="$OUT_DIR/mesh_scaling.json" >/dev/null
check_json ext_multi_gpu_mesh "$OUT_DIR/mesh_scaling.json"

if [ -n "$CHECK" ]; then
  say "check fresh records against BENCH_micro.json"
  python3 scripts/bench_check.py \
      --baseline BENCH_micro.json \
      --band-pct "${BENCH_BAND_PCT:-25}" \
      --mad-k "${BENCH_MAD_K:-5}" \
      "$OUT_DIR/micro_parallel.json" \
      "$OUT_DIR/micro_engine.json" \
      "$OUT_DIR/servebench.json" \
      "$OUT_DIR/micro_hashtable.json" \
      "$OUT_DIR/micro_join.json" \
      "$OUT_DIR/mesh_scaling.json"
  say "check passed"
  exit 0
fi

say "merge into BENCH_micro.json"
# Merge, never overwrite wholesale: records from this run replace prior
# records with the same (experiment, config) key; every other prior
# record is preserved. An aborted or partial run therefore cannot erase
# trajectory data it did not itself regenerate. The write is atomic
# (temp + rename) so a crash mid-write keeps the old file intact.
python3 - "$OUT_DIR/micro_parallel.json" \
           "$OUT_DIR/micro_engine.json" \
           "$OUT_DIR/micro_morsel_gbench.json" \
           "$OUT_DIR/servebench.json" \
           "$OUT_DIR/micro_hashtable.json" \
           "$OUT_DIR/micro_join.json" \
           "$OUT_DIR/mesh_scaling.json" <<'PY'
import datetime
import json
import os
import socket
import subprocess
import sys

records = []

# micro_parallel, micro_engine, servebench, micro_hashtable, micro_join
# and ext_multi_gpu_mesh already emit the target record shape.
for arg in (1, 2, 4, 5, 6, 7):
    with open(sys.argv[arg]) as f:
        records.extend(json.load(f))

# Convert google-benchmark output: one record per benchmark entry, the
# benchmark name split into experiment (binary/family) and config (args).
with open(sys.argv[3]) as f:
    gbench = json.load(f)
for entry in gbench.get("benchmarks", []):
    if entry.get("run_type") == "aggregate":
        continue
    name, _, config = entry["name"].partition("/")
    records.append({
        "experiment": "micro_morsel/" + name,
        "config": config,
        "mean": entry.get("real_time", 0.0),
        "stderr": 0.0,
        "runs": int(entry.get("repetitions", 1) or 1),
    })

# Provenance: every fresh record carries where and when it was measured,
# so a trajectory mixing machines or stale checkouts is visible in the
# data rather than a mystery.
try:
    sha = subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                         capture_output=True, text=True,
                         check=True).stdout.strip()
except (OSError, subprocess.CalledProcessError):
    sha = "unknown"
stamp = datetime.datetime.now(datetime.timezone.utc).strftime(
    "%Y-%m-%dT%H:%M:%SZ")
host = socket.gethostname()
for record in records:
    record["git_sha"] = sha
    record["recorded_at"] = stamp
    record["hostname"] = host

merged = {}
kept = 0
if os.path.exists("BENCH_micro.json"):
    try:
        with open("BENCH_micro.json") as f:
            for record in json.load(f):
                merged[(record["experiment"], record["config"])] = record
        kept = len(merged)
    except (json.JSONDecodeError, KeyError, TypeError) as error:
        print(f"warning: ignoring unreadable BENCH_micro.json ({error})",
              file=sys.stderr)
for record in records:
    merged[(record["experiment"], record["config"])] = record

out = sorted(merged.values(),
             key=lambda r: (r["experiment"], r["config"]))
tmp_path = "BENCH_micro.json.tmp"
with open(tmp_path, "w") as f:
    json.dump(out, f, indent=2)
    f.write("\n")
os.replace(tmp_path, "BENCH_micro.json")
preserved = len(out) - len({(r["experiment"], r["config"])
                            for r in records})
print(f"wrote {len(out)} records to BENCH_micro.json "
      f"({len(records)} fresh, {preserved} preserved of {kept} prior)")
PY

say "done"
