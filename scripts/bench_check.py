#!/usr/bin/env python3
"""Regression watchdog over BENCH_micro.json.

Compares fresh bench records (one or more JSON files in the repo's
{experiment, config, mean, stderr, runs} record shape) against the
committed baseline, and fails loudly when a metric moved beyond the
allowed band in its bad direction.

Robust statistics: when several fresh samples share an (experiment,
config) key — repeated runs, or a baseline record carrying `median`/
`mad` from prior merges — the comparison uses medians, and the band
widens to `mad_k` times the baseline's median absolute deviation. A
single noisy run therefore cannot fail the gate by itself unless it
clears both the percentage band and the historical noise band.

Direction-aware: experiments whose name contains `qps`, `hit_pct` or
`speedup` are higher-is-better; everything else (latencies, ns/op,
overhead percentages) is lower-is-better. Counter-like records
(`_shed`, `_cancelled`, `_deadline_exceeded`) are informational and
skipped.

Exit codes: 0 = all compared metrics within band, 1 = regression(s) or
nothing compared, 2 = usage error.
"""

import argparse
import json
import statistics
import sys

HIGHER_BETTER = ("qps", "hit_pct", "speedup")
SKIP = ("_shed", "_cancelled", "_deadline_exceeded")


def load_records(path):
    with open(path) as f:
        data = json.load(f)
    if not isinstance(data, list):
        raise ValueError(f"{path}: expected a JSON array of records")
    for record in data:
        if "experiment" not in record or "config" not in record:
            raise ValueError(f"{path}: record missing experiment/config")
    return data


def key_of(record):
    return (record["experiment"], record["config"])


def median_mad(values):
    med = statistics.median(values)
    mad = statistics.median(abs(v - med) for v in values)
    return med, mad


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("fresh", nargs="+",
                        help="fresh record files (repeats may repeat keys)")
    parser.add_argument("--baseline", default="BENCH_micro.json",
                        help="baseline record file (default: %(default)s)")
    parser.add_argument("--band-pct", type=float, default=25.0,
                        help="allowed move as %% of the baseline value "
                             "(default: %(default)s)")
    parser.add_argument("--mad-k", type=float, default=5.0,
                        help="allowed move as a multiple of the baseline "
                             "MAD (default: %(default)s); the band is the "
                             "max of both")
    args = parser.parse_args()

    try:
        baseline = {key_of(r): r for r in load_records(args.baseline)}
    except FileNotFoundError:
        print(f"bench_check: no baseline at {args.baseline}; "
              f"nothing to compare", file=sys.stderr)
        return 1
    fresh = {}
    for path in args.fresh:
        for record in load_records(path):
            fresh.setdefault(key_of(record), []).append(record["mean"])

    compared = 0
    regressions = []
    for key, samples in sorted(fresh.items()):
        experiment, config = key
        if any(s in experiment for s in SKIP):
            continue
        base = baseline.get(key)
        if base is None:
            continue
        base_value = base.get("median", base["mean"]) \
            if base.get("has_distribution") else base["mean"]
        base_mad = base.get("mad", 0.0) if base.get("has_distribution") \
            else 0.0
        fresh_value, _ = median_mad(samples)
        band = max(args.band_pct / 100.0 * abs(base_value),
                   args.mad_k * base_mad)
        higher_better = any(s in experiment for s in HIGHER_BETTER)
        delta = fresh_value - base_value
        bad = -delta if higher_better else delta
        compared += 1
        status = "ok"
        if bad > band:
            status = "REGRESSION"
            regressions.append(
                f"{experiment} [{config}]: {base_value:g} -> "
                f"{fresh_value:g} ({'-' if higher_better else '+'}"
                f"{abs(delta):g}, band {band:g}, "
                f"{'higher' if higher_better else 'lower'}-is-better)")
        print(f"  {status:>10}  {experiment} [{config}]: "
              f"base {base_value:g}, fresh {fresh_value:g} "
              f"(n={len(samples)}, band {band:g})")

    if compared == 0:
        print("bench_check: no fresh record matched a baseline key; "
              "refusing to pass vacuously", file=sys.stderr)
        return 1
    if regressions:
        print(f"\nbench_check: {len(regressions)} regression(s) beyond "
              f"the band:", file=sys.stderr)
        for line in regressions:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(f"bench_check: {compared} metrics within band")
    return 0


if __name__ == "__main__":
    sys.exit(main())
