#!/usr/bin/env bash
# Full static + dynamic gate for the repository:
#   1. Release build, all tests          (build-release)
#   2. ASan+UBSan build, all tests       (build-asan,  PUMP_SANITIZE=address)
#   3. TSan build, concurrency tests     (build-tsan,  PUMP_SANITIZE=thread)
#   4. micro_parallel + micro_engine --quick smoke runs (probe pipeline
#      and fused-vs-plan-IR self-checks)
#   5. modelcheck: both testbed profiles must pass, the broken fixture
#      must fail with named violations
#   6. plandump over the SSB suite + Q6: every compiled plan must be
#      well-formed JSON that passes structural checks (dense dimensions
#      must select the perfect hash table)
#   7. clang-tidy over src/tests/bench/tools (skipped when not installed)
#
# Usage: scripts/check.sh [-j N]
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"
while getopts "j:" opt; do
  case "$opt" in
    j) JOBS="$OPTARG" ;;
    *) echo "usage: $0 [-j N]" >&2; exit 2 ;;
  esac
done

say() { printf '\n==> %s\n' "$*"; }

configure_and_test() {
  local dir="$1" sanitize="$2" test_regex="$3"
  say "configure $dir (PUMP_SANITIZE='$sanitize')"
  cmake -B "$dir" -S . -DCMAKE_BUILD_TYPE=Release \
        -DPUMP_SANITIZE="$sanitize" >/dev/null
  say "build $dir"
  cmake --build "$dir" -j "$JOBS"
  say "test $dir${test_regex:+ (filter: $test_regex)}"
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS" \
        ${test_regex:+-R "$test_regex"}
}

# 1. Release: everything, warnings-as-errors enforced by the build itself.
configure_and_test build-release "" ""

# 2. ASan+UBSan: everything, happens-before assertions forced on.
configure_and_test build-asan "address" ""

# 3. TSan: the concurrent scheduler / executor / failover / integration
#    paths, plus the plan-IR golden equivalence suite (its probe
#    pipelines run multi-worker).
configure_and_test build-tsan "thread" \
  "exec_test|executor_test|engine_test|fault_test|failure_test|integration_test|plan_test"

# 4. Executor/dispatcher/probe micro bench smoke run (Release, shrunken
#    sizes): the bench self-checks that the probe variants agree and
#    exercises the persistent executor end to end. micro_engine likewise
#    self-checks that the fused path and the plan IR agree bit for bit.
say "micro_parallel smoke run (--quick)"
./build-release/bench/micro_parallel --quick >/dev/null

say "micro_engine smoke run (--quick)"
./build-release/bench/micro_engine --quick >/dev/null

# 5. Model linter: the testbeds must be clean, the broken fixture must not.
say "modelcheck: testbed profiles"
./build-release/tools/modelcheck >/dev/null

say "modelcheck: broken fixture must fail"
if ./build-release/tools/modelcheck --profile broken-fixture >/dev/null; then
  echo "FAIL: modelcheck accepted the deliberately broken fixture" >&2
  exit 1
fi
echo "broken fixture rejected, as expected"

# 6. Plan gate: compile the SSB suite + Q6 to physical plans (plandump
#    already re-checks each plan with plan::ValidatePlan; a malformed
#    plan exits non-zero) and structurally validate the emitted JSON.
say "plandump: SSB suite + Q6 plans must be well-formed"
PLANS_JSON="$(mktemp)"
trap 'rm -f "$PLANS_JSON"' EXIT
./build-release/tools/plandump --query all --rows 50000 --policy gpu \
    --json "$PLANS_JSON"
python3 - "$PLANS_JSON" <<'PY'
import json
import sys

with open(sys.argv[1]) as f:
    plans = json.load(f)

assert len(plans) == 4, f"expected 4 plans, got {len(plans)}"
names = [p["query"] for p in plans]
assert names == ["ssb-q1", "ssb-q2", "ssb-q3", "q6"], names
for p in plans:
    pipes = p["pipelines"]
    assert pipes, f"{p['query']}: no pipelines"
    probe = pipes[-1]
    assert probe["type"] == "probe", f"{p['query']}: no probe pipeline"
    ops = probe["operators"]
    assert ops and ops[-1]["op"] == "aggregate", (
        f"{p['query']}: probe pipeline must end in an aggregate")
    builds = [q for q in pipes if q["type"] == "build"]
    assert len(builds) == p["shape"]["joins"], (
        f"{p['query']}: build pipelines != joins")
    for b in builds:
        # Acceptance: dense key domains must select the perfect table
        # (or hybrid past the GPU budget — not exercised at this size).
        if b["key_density"] >= 0.5:
            assert b["hash_table"] == "perfect", (
                f"{p['query']}: dense dimension picked {b['hash_table']}")
        else:
            assert b["hash_table"] == "linear_probing", (
                f"{p['query']}: sparse dimension picked {b['hash_table']}")
print(f"{len(plans)} plans well-formed "
      f"({sum(len(p['pipelines']) for p in plans)} pipelines)")
PY

# 7. clang-tidy, when available. The container image may not ship it; the
#    .clang-tidy profile is still enforced wherever the tool exists.
if command -v clang-tidy >/dev/null 2>&1; then
  say "clang-tidy"
  cmake -B build-release -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  git ls-files 'src/*.cc' 'src/**/*.cc' 'tests/*.cc' 'bench/*.cc' \
               'tools/**/*.cc' |
    xargs -P "$JOBS" -n 1 clang-tidy -p build-release --quiet
else
  say "clang-tidy not installed; skipping lint pass"
fi

say "all checks passed"
