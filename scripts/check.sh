#!/usr/bin/env bash
# Full static + dynamic gate for the repository:
#   1. Release build, all tests          (build-release), then the
#      dispatch-sensitive suites again under PUMP_FORCE_SCALAR=1 so the
#      interleaved fallback paths stay covered on AVX2 hosts
#   2. ASan+UBSan build, all tests       (build-asan,  PUMP_SANITIZE=address)
#   3. TSan build, concurrency tests     (build-tsan,  PUMP_SANITIZE=thread)
#      plus the servebench --quick --soak fault sweep (concurrent
#      queries, poison, deadlines, cancels; zero hung/lost queries),
#      the deterministic concurrency verifier (build-verify,
#      PUMP_VERIFY=ON: verify_test + verifydump --quick with a >= 1000
#      schedule floor, 100% mutant kills, acyclic lock order), and the
#      shim lint (no raw std:: primitives in verifier-migrated files)
#   4. micro_parallel + micro_engine --quick smoke runs (probe pipeline
#      and fused-vs-plan-IR self-checks)
#   5. modelcheck: both testbed profiles must pass, the broken fixture
#      must fail with named violations; modelcheck --mesh must accept
#      every N-GPU mesh topology profile (ring/crossbar/SLI/P2P/
#      host-bounce) and reject the broken mesh fixture
#   6. plandump over the SSB suite + Q6: every compiled plan must be
#      well-formed JSON that passes structural checks (dense dimensions
#      must select the perfect hash table), and the emitted plans must
#      be byte-identical under PUMP_FORCE_SCALAR=1 (plan choice must not
#      depend on SIMD dispatch)
#   7. tracedump over SSB Q3 with tracing on: the Chrome trace JSON must
#      parse with every B matched by an E, the metrics snapshot must
#      carry the core counter families, the residual report must have a
#      row per pipeline, and span coverage must be >= 95% of wall time;
#      modelcheck --residuals must accept the report
#   7b. tracedump --concurrent: queries racing through the serving engine
#      must each reassemble to >= 95% coverage from their query-id stamps
#      alone, and the --query-id filtered export must carry exactly that
#      query's balanced timeline
#   7c. pumpstat: the introspection snapshot must carry every family
#      (stats, queries, cache+contents, window, routes, incidents, slo)
#      in both JSON and Prometheus text exposition
#   7d. bench_check.py synthetic smoke: a fabricated regression must exit
#      nonzero, the clean case zero (the --check watchdog's own test)
#   8. disabled-tracing overhead guard: micro_engine's instrumented plan
#      IR (spans compiled in, recorder off) must average <= 5% over the
#      uninstrumented fused baseline
#   9. clang-tidy over src/tests/bench/tools (skipped when not installed)
#
# Usage: scripts/check.sh [-j N]
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"
while getopts "j:" opt; do
  case "$opt" in
    j) JOBS="$OPTARG" ;;
    *) echo "usage: $0 [-j N]" >&2; exit 2 ;;
  esac
done

say() { printf '\n==> %s\n' "$*"; }

configure_and_test() {
  local dir="$1" sanitize="$2" test_regex="$3"
  say "configure $dir (PUMP_SANITIZE='$sanitize')"
  cmake -B "$dir" -S . -DCMAKE_BUILD_TYPE=Release \
        -DPUMP_SANITIZE="$sanitize" >/dev/null
  say "build $dir"
  cmake --build "$dir" -j "$JOBS"
  say "test $dir${test_regex:+ (filter: $test_regex)}"
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS" \
        ${test_regex:+-R "$test_regex"}
}

# 1. Release: everything, warnings-as-errors enforced by the build itself.
configure_and_test build-release "" ""

# 1b. Forced-scalar lane: the same binaries with PUMP_FORCE_SCALAR=1, so
#     the interleaved fallback paths stay exercised on AVX2 hosts (where
#     the auto-dispatch run above took the vector kernels). Scoped to the
#     suites that touch the dispatched probe/partition paths.
say "test build-release (PUMP_FORCE_SCALAR=1: scalar-dispatch fallback)"
PUMP_FORCE_SCALAR=1 ctest --test-dir build-release --output-on-failure \
      -j "$JOBS" -R "hash_test|simd_test|join_test|star_test|plan_test"

# 2. ASan+UBSan: everything, happens-before assertions forced on.
configure_and_test build-asan "address" ""

# 3. TSan: the concurrent scheduler / executor / failover / integration
#    paths, plus the plan-IR golden equivalence suite (its probe
#    pipelines run multi-worker) and the observability layer (per-thread
#    trace rings + counters hammered from all executor workers).
configure_and_test build-tsan "thread" \
  "exec_test|executor_test|engine_test|fault_test|failure_test|integration_test|obs_test|plan_test|server_test|simd_test"

TMP_DIR="$(mktemp -d)"
trap 'rm -rf "$TMP_DIR"' EXIT

# 3b. Server soak under TSan: >= 8 concurrent queries against the serving
#     engine across workers x fault-probability cells, with poisoned
#     queries, deadlines, client cancels and admission faults in the mix.
#     servebench exits non-zero on any hung/lost query, any completed
#     result that differs from solo execution, any accounting invariant
#     violation (submitted == admitted + shed + rejected), or any
#     abnormal resolution without a matching flight-recorder artifact.
say "servebench soak smoke (TSan, --quick): zero hung/lost queries"
./build-tsan/tools/servebench --quick --soak \
    --incidents-out="$TMP_DIR/soak_incidents.json"

say "soak incident artifacts: parseable and self-contained"
python3 - "$TMP_DIR/soak_incidents.json" <<'PY'
import json
import sys

with open(sys.argv[1]) as f:
    incidents = json.load(f)
assert incidents, "soak produced no incident artifacts (it injects " \
    "poison, deadlines and cancels every cell — that cannot be clean)"
kinds = {}
for incident in incidents:
    for key in ("query_id", "kind", "status", "plan", "report",
                "metrics_delta", "trace_tail"):
        assert key in incident, f"incident missing {key}: {incident}"
    assert incident["query_id"] > 0, incident
    assert incident["kind"] in ("fault_ladder_exhausted", "cancelled",
                                "deadline_expired"), incident["kind"]
    assert incident["plan"] is not None, "incident without its plan dump"
    assert incident["report"] is not None, "incident without report rows"
    assert incident["trace_tail"], (
        "incident without a trace tail (soak runs with tracing on)")
    kinds[incident["kind"]] = kinds.get(incident["kind"], 0) + 1
assert "fault_ladder_exhausted" in kinds, kinds
print(f"{len(incidents)} incident artifacts, all self-contained: "
      + ", ".join(f"{k}={v}" for k, v in sorted(kinds.items())))
PY

say "servebench soak smoke (TSan, --quick, PUMP_FORCE_SCALAR=1)"
PUMP_FORCE_SCALAR=1 ./build-tsan/tools/servebench --quick --soak

# 3c. Deterministic concurrency verifier (PUMP_VERIFY=ON): the explorer
#     tests, then verifydump --quick. verifydump exits non-zero when any
#     model fails, any seeded mutant survives, or the lock-order graph
#     has a cycle; the python gate additionally enforces the schedule
#     floor so a silently shrunken suite cannot pass.
say "configure build-verify (PUMP_VERIFY=ON)"
cmake -B build-verify -S . -DCMAKE_BUILD_TYPE=Release \
      -DPUMP_VERIFY=ON >/dev/null
say "build build-verify"
cmake --build build-verify -j "$JOBS"
say "test build-verify (verify_test: explorer, replay, lock order)"
ctest --test-dir build-verify --output-on-failure -R "verify_test"

say "verifydump --quick: models clean, 100% mutant kills, acyclic locks"
./build-verify/tools/verifydump --quick > "$TMP_DIR/verify.json"
python3 - "$TMP_DIR/verify.json" <<'PY'
import json
import sys

with open(sys.argv[1]) as f:
    report = json.load(f)
assert report["verify"], "verifydump was built without PUMP_VERIFY"
assert report["clean_pass"], "a clean model run failed"
assert report["schedules_explored"] >= 1000, (
    f"explored only {report['schedules_explored']} distinct schedules; "
    "the quick lane must cover >= 1000")
assert report["mutants_total"] >= 7, report["mutants_total"]
assert report["mutants_killed"] == report["mutants_total"], (
    "surviving mutants: " + ", ".join(
        m["mutation"] for m in report["mutants"] if not m["killed"]))
assert report["lock_order"]["acyclic"], report["lock_order"]
print(f"{report['schedules_explored']} schedules explored, "
      f"{report['mutants_killed']}/{report['mutants_total']} mutants "
      f"killed, lock order acyclic over "
      f"{len(report['lock_order']['nodes'])} classes")
PY

# 3d. Shim lint: the migrated structures must declare their concurrency
#     primitives through the verify:: shims; a raw std:: primitive there
#     is invisible to the model checker. Deliberate exceptions carry a
#     `verify-exempt` comment on the same line.
say "verify shim lint (raw std:: primitives in migrated files)"
MIGRATED_FILES=(
  src/plan/build_cache.h src/plan/build_cache.cc
  src/common/cancel.h
  src/server/query_engine.h src/server/query_engine.cc
  src/exec/morsel.h
  src/exec/work_stealing.h
  src/obs/trace.h src/obs/trace.cc
)
if grep -nE 'std::(mutex|condition_variable|atomic|thread)\b' \
     "${MIGRATED_FILES[@]}" |
   grep -vE 'verify-exempt' |
   grep -vE '^[^:]+:[0-9]+:\s*(//|/?\*)' ; then
  echo "FAIL: raw std:: concurrency primitive in a verifier-migrated" \
       "file (use verify::Mutex/CondVar/Atomic/Thread, or annotate" \
       "the line with 'verify-exempt' and a reason)" >&2
  exit 1
fi
echo "migrated files use verify:: shims only"

# 4. Executor/dispatcher/probe micro bench smoke run (Release, shrunken
#    sizes): the bench self-checks that the probe variants agree and
#    exercises the persistent executor end to end. micro_engine likewise
#    self-checks that the fused path and the plan IR agree bit for bit.

say "micro_parallel smoke run (--quick)"
./build-release/bench/micro_parallel --quick >/dev/null

say "micro_engine smoke run (--quick)"
./build-release/bench/micro_engine --quick \
    --json="$TMP_DIR/micro_engine.json" >/dev/null

# 5. Model linter: the testbeds must be clean, the broken fixture must not.
say "modelcheck: testbed profiles"
./build-release/tools/modelcheck >/dev/null

say "modelcheck: broken fixture must fail"
if ./build-release/tools/modelcheck --profile broken-fixture >/dev/null; then
  echo "FAIL: modelcheck accepted the deliberately broken fixture" >&2
  exit 1
fi
echo "broken fixture rejected, as expected"

# 5b. Mesh lint: every N-GPU topology profile the exchange planner can
#     route over must pass the structural + peering checks; the broken
#     mesh fixture (orphaned GPU, over-electrical host link) must not.
say "modelcheck --mesh: all mesh topology profiles"
./build-release/tools/modelcheck --mesh >/dev/null

say "modelcheck --mesh: broken mesh fixture must fail"
if ./build-release/tools/modelcheck --mesh \
    --profile broken-mesh-fixture >/dev/null; then
  echo "FAIL: modelcheck accepted the deliberately broken mesh fixture" >&2
  exit 1
fi
echo "broken mesh fixture rejected, as expected"

# 6. Plan gate: compile the SSB suite + Q6 to physical plans (plandump
#    already re-checks each plan with plan::ValidatePlan; a malformed
#    plan exits non-zero) and structurally validate the emitted JSON.
say "plandump: SSB suite + Q6 plans must be well-formed"
PLANS_JSON="$TMP_DIR/plans.json"
./build-release/tools/plandump --query all --rows 50000 --policy gpu \
    --json "$PLANS_JSON"
python3 - "$PLANS_JSON" <<'PY'
import json
import sys

with open(sys.argv[1]) as f:
    plans = json.load(f)

assert len(plans) == 4, f"expected 4 plans, got {len(plans)}"
names = [p["query"] for p in plans]
assert names == ["ssb-q1", "ssb-q2", "ssb-q3", "q6"], names
for p in plans:
    pipes = p["pipelines"]
    assert pipes, f"{p['query']}: no pipelines"
    probe = pipes[-1]
    assert probe["type"] == "probe", f"{p['query']}: no probe pipeline"
    ops = probe["operators"]
    assert ops and ops[-1]["op"] == "aggregate", (
        f"{p['query']}: probe pipeline must end in an aggregate")
    builds = [q for q in pipes if q["type"] == "build"]
    assert len(builds) == p["shape"]["joins"], (
        f"{p['query']}: build pipelines != joins")
    for b in builds:
        # Acceptance: dense key domains must select the perfect table
        # (or hybrid past the GPU budget — not exercised at this size).
        if b["key_density"] >= 0.5:
            assert b["hash_table"] == "perfect", (
                f"{p['query']}: dense dimension picked {b['hash_table']}")
        else:
            assert b["hash_table"] == "linear_probing", (
                f"{p['query']}: sparse dimension picked {b['hash_table']}")
print(f"{len(plans)} plans well-formed "
      f"({sum(len(p['pipelines']) for p in plans)} pipelines)")
PY

# 6b. Dispatch-independence guard: plan choice must not depend on the
#     host's SIMD dispatch — the cost model's constants are deliberately
#     static (the probe_simd residual class tracks the real difference),
#     so the compiled plans must be byte-identical under forced scalar.
say "plandump: plans must be bit-identical across dispatch modes"
PUMP_FORCE_SCALAR=1 ./build-release/tools/plandump --query all \
    --rows 50000 --policy gpu --json "$TMP_DIR/plans_scalar.json"
if ! cmp -s "$PLANS_JSON" "$TMP_DIR/plans_scalar.json"; then
  echo "FAIL: compiled plans differ between auto and forced-scalar" \
       "dispatch (the cost model must stay dispatch-independent)" >&2
  diff "$PLANS_JSON" "$TMP_DIR/plans_scalar.json" | head -20 >&2 || true
  exit 1
fi
echo "plans identical under PUMP_FORCE_SCALAR=1"

# 7. Trace gate: run SSB Q3 through the plan IR with the recorder on and
#    validate all three artifacts. Malformed events (unbalanced B/E),
#    missing counter families, an empty residual report, or span coverage
#    below 95% of wall time all fail the gate.
say "tracedump: SSB Q3 trace/metrics/residuals must be well-formed"
./build-release/tools/tracedump --query ssb-q3 --rows 50000 --policy cost \
    --trace-out "$TMP_DIR/trace.json" \
    --metrics-out "$TMP_DIR/metrics.json" \
    --residuals "$TMP_DIR/residuals.json" > "$TMP_DIR/summary.json"
python3 - "$TMP_DIR/summary.json" "$TMP_DIR/trace.json" \
          "$TMP_DIR/metrics.json" "$TMP_DIR/residuals.json" <<'PY'
import json
import sys

with open(sys.argv[1]) as f:
    summary = json.load(f)
assert summary["workers"] >= 2, summary
assert summary["trace_events"] > 0, summary
assert summary["span_coverage"] >= 0.95, (
    f"trace spans cover {summary['span_coverage']:.3f} of wall time, "
    "want >= 0.95")

with open(sys.argv[2]) as f:
    trace = json.load(f)
events = trace["traceEvents"]
assert events, "trace has no events"
depth = {}
for e in events:
    key = (e["pid"], e["tid"])
    assert e["ph"] in ("B", "E", "i", "M"), f"malformed phase: {e}"
    if e["ph"] in ("B", "E", "i"):
        assert isinstance(e["ts"], (int, float)) and "name" in e, e
    if e["ph"] == "B":
        depth[key] = depth.get(key, 0) + 1
    elif e["ph"] == "E":
        depth[key] = depth.get(key, 0) - 1
        assert depth[key] >= 0, f"E without B on thread {key}"
unbalanced = {k: d for k, d in depth.items() if d != 0}
assert not unbalanced, f"unbalanced B/E per thread: {unbalanced}"

with open(sys.argv[3]) as f:
    metrics = json.load(f)
counters = metrics["counters"]
for family in ("exec.tasks_run", "exec.ws.chunk_claims", "fault.checks",
               "transfer.chunks", "plan.queries", "plan.morsels"):
    assert family in counters, f"metrics snapshot missing {family}"
assert counters["plan.queries"] >= 1, counters["plan.queries"]
assert counters["exec.tasks_run"] > 0, counters["exec.tasks_run"]
assert "plan.pipeline_us" in metrics["histograms"], "missing histogram"

with open(sys.argv[4]) as f:
    report = json.load(f)
rows = report["model_residuals"]
assert rows, "residual report has no pipeline rows"
for row in rows:
    for key in ("pipeline", "class", "predicted_s", "measured_s", "ratio"):
        assert key in row, f"residual row missing {key}: {row}"
    assert row["measured_s"] > 0.0, row
print(f"trace OK: {len(events)} events balanced across "
      f"{len(depth)} threads, {len(counters)} counters, "
      f"{len(rows)} residual rows")
PY

say "tracedump: CPU placement must trace spans from >= 2 worker threads"
./build-release/tools/tracedump --query ssb-q3 --rows 50000 --policy cpu \
    > "$TMP_DIR/summary_cpu.json"
python3 - "$TMP_DIR/summary_cpu.json" <<'PY'
import json
import sys

with open(sys.argv[1]) as f:
    summary = json.load(f)
assert summary["trace_threads"] >= 2, (
    f"CPU probe traced {summary['trace_threads']} thread(s); the "
    "work-stealing workers should record into their own rings")
assert summary["span_coverage"] >= 0.95, summary
print(f"{summary['trace_threads']} threads traced, "
      f"coverage {summary['span_coverage']:.4f}")
PY

say "modelcheck: residual report must lint clean (permissive band)"
./build-release/tools/modelcheck --residuals "$TMP_DIR/residuals.json" \
    --residual-band 0:1e9 >/dev/null

# 7b. Trace correlation gate: concurrent queries through the serving
#     engine, per-query timelines reassembled from the query-id stamps
#     across all worker rings. Coverage below 95% means spans lost their
#     attribution somewhere between Submit and the morsel loops.
say "tracedump --concurrent: per-query coverage >= 0.95 from id stamps"
./build-release/tools/tracedump --concurrent 8 --workers 2 --rows 50000 \
    --trace-out "$TMP_DIR/trace_concurrent.json" \
    > "$TMP_DIR/summary_concurrent.json"
./build-release/tools/tracedump --concurrent 8 --workers 2 --rows 50000 \
    --query-id 3 --trace-out "$TMP_DIR/trace_q3only.json" >/dev/null
python3 - "$TMP_DIR/summary_concurrent.json" \
          "$TMP_DIR/trace_concurrent.json" \
          "$TMP_DIR/trace_q3only.json" <<'PY'
import json
import sys

with open(sys.argv[1]) as f:
    summary = json.load(f)
assert summary["workers"] >= 2, summary
assert len(summary["queries"]) == 8, summary
assert not summary["coverage_unreliable"], (
    f"ring wrapped ({summary['dropped_events']} dropped); coverage "
    "cannot be trusted at this size — the gate itself is misconfigured")
for q in summary["queries"]:
    assert q["coverage"] >= 0.95, (
        f"query {q['id']}: plan.execute covers {q['coverage']:.3f} of its "
        "server.query span; want >= 0.95")

with open(sys.argv[2]) as f:
    full = json.load(f)["traceEvents"]
tagged = [e for e in full if "qid" in e]
assert tagged, "concurrent trace has no query-id stamps"
assert {e["qid"] for e in tagged} == set(range(1, 9)), (
    sorted({e["qid"] for e in tagged}))

with open(sys.argv[3]) as f:
    filtered = json.load(f)["traceEvents"]
assert filtered, "filtered trace is empty"
assert all(e.get("qid") == 3 for e in filtered), (
    "--query-id 3 export contains foreign events")
depth = {}
for e in filtered:
    key = (e["pid"], e["tid"])
    if e["ph"] == "B":
        depth[key] = depth.get(key, 0) + 1
    elif e["ph"] == "E":
        depth[key] = depth.get(key, 0) - 1
        assert depth[key] >= 0, f"E without B on thread {key}"
assert not any(depth.values()), f"unbalanced filtered B/E: {depth}"
print(f"8 queries reassembled, min coverage "
      f"{summary['min_coverage']:.4f}; filtered export: "
      f"{len(filtered)} events, all qid=3, balanced")
PY

# 7c. Introspection gate: pumpstat's snapshot must carry every family in
#     both exposition formats, and the --incidents run must leave one
#     artifact per induced abnormal resolution.
say "pumpstat: snapshot families in JSON and Prometheus expositions"
./build-release/tools/pumpstat --queries 8 --rows 20000 --incidents \
    --out "$TMP_DIR/pumpstat.json" \
    --incidents-out "$TMP_DIR/pumpstat_incidents.json"
./build-release/tools/pumpstat --queries 4 --rows 20000 --prom \
    --out "$TMP_DIR/pumpstat.prom"
python3 - "$TMP_DIR/pumpstat.json" "$TMP_DIR/pumpstat_incidents.json" \
          "$TMP_DIR/pumpstat.prom" <<'PY'
import json
import sys

with open(sys.argv[1]) as f:
    snap = json.load(f)
for family in ("stats", "queries", "cache", "window", "exchange_routes",
               "incidents", "slo"):
    assert family in snap, f"snapshot missing {family}"
assert snap["stats"]["completed"] >= 8, snap["stats"]
assert snap["cache"]["contents"], "cache contents empty after SSB mix"
assert 0.0 < snap["cache"]["hit_ratio"] <= 1.0, snap["cache"]
assert snap["window"]["count"] > 0, snap["window"]
assert snap["window"]["p99_us"] >= snap["window"]["p50_us"], snap["window"]
# The poisoned build and the microsecond deadline are deterministic;
# the client-side cancel can lose its race to a fast query, so it is
# allowed (not required) here. Soak's invariants pin the exact
# stats<->incidents correspondence.
by_kind = snap["incidents"]["by_kind"]
assert by_kind.get("fault_ladder_exhausted") == 1, snap["incidents"]
assert by_kind.get("deadline_expired") == 1, snap["incidents"]
assert snap["incidents"]["captured"] == sum(by_kind.values()), (
    snap["incidents"])
assert snap["slo"]["ok"] and not snap["slo"]["configured"], snap["slo"]

with open(sys.argv[2]) as f:
    ring = json.load(f)
assert len(ring["incidents"]) == snap["incidents"]["captured"], ring

with open(sys.argv[3]) as f:
    prom = f.read()
for family in ("pump_server_submitted", "pump_server_queue_depth",
               "pump_cache_hit_ratio", "pump_window_latency_p99_us",
               "pump_window_qps", "pump_incidents_captured",
               "pump_slo_ok"):
    assert f"\n{family} " in prom or prom.startswith(f"{family} "), (
        f"prometheus exposition missing {family}")
assert "# TYPE pump_server_submitted counter" in prom, "missing # TYPE"
print(f"snapshot families present; {len(ring['incidents'])} induced "
      f"incidents captured; prometheus exposition complete")
PY

# 7d. Watchdog self-test: bench_check.py must fail a fabricated
#     regression and pass the clean case — deterministic synthetic
#     records, no bench noise involved.
say "bench_check.py: synthetic regression must fail, clean must pass"
python3 - "$TMP_DIR" <<'PY'
import json
import os
import subprocess
import sys

tmp = sys.argv[1]
base = [
    {"experiment": "servebench_qps", "config": "c", "mean": 100.0,
     "stderr": 0.0, "runs": 3},
    {"experiment": "servebench_p99_us", "config": "c", "mean": 500.0,
     "stderr": 0.0, "runs": 3, "median": 500.0, "mad": 10.0,
     "has_distribution": True},
]
clean = [
    {"experiment": "servebench_qps", "config": "c", "mean": 96.0,
     "stderr": 0.0, "runs": 1},
    {"experiment": "servebench_p99_us", "config": "c", "mean": 540.0,
     "stderr": 0.0, "runs": 1},
]
bad = [
    {"experiment": "servebench_qps", "config": "c", "mean": 50.0,
     "stderr": 0.0, "runs": 1},
    {"experiment": "servebench_p99_us", "config": "c", "mean": 900.0,
     "stderr": 0.0, "runs": 1},
]
for name, records in (("base", base), ("clean", clean), ("bad", bad)):
    with open(os.path.join(tmp, f"bc_{name}.json"), "w") as f:
        json.dump(records, f)

def run(fresh):
    return subprocess.run(
        [sys.executable, "scripts/bench_check.py",
         "--baseline", os.path.join(tmp, "bc_base.json"),
         os.path.join(tmp, f"bc_{fresh}.json")],
        capture_output=True, text=True).returncode

assert run("clean") == 0, "bench_check failed the in-band case"
assert run("bad") != 0, "bench_check passed a 2x regression"
print("watchdog self-test OK: clean -> 0, regression -> nonzero")
PY

# 8. Overhead guard: with the recorder off, the compiled-in span
#    instrumentation must cost <= 5% on average over the uninstrumented
#    fused baseline (per-query numbers are noisy on small hosts, so the
#    gate is on the mean across queries).
say "disabled-tracing overhead guard (mean <= 5%)"
python3 - "$TMP_DIR/micro_engine.json" <<'PY'
import json
import sys

with open(sys.argv[1]) as f:
    records = json.load(f)
overheads = [r["mean"] for r in records
             if r["experiment"] == "engine_plan_overhead_pct"]
assert overheads, "micro_engine emitted no engine_plan_overhead_pct records"
mean = sum(overheads) / len(overheads)
assert mean <= 5.0, (
    f"instrumented-but-disabled plan IR is {mean:+.2f}% over the fused "
    f"baseline on average (per-query: "
    f"{', '.join(f'{o:+.1f}%' for o in overheads)}); ceiling is +5%")
print(f"disabled-tracing overhead: {mean:+.2f}% mean over "
      f"{len(overheads)} queries (ceiling +5%)")
PY

# 9. clang-tidy, when available. The container image may not ship it; the
#    .clang-tidy profile is still enforced wherever the tool exists.
if command -v clang-tidy >/dev/null 2>&1; then
  say "clang-tidy"
  cmake -B build-release -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  git ls-files 'src/*.cc' 'src/**/*.cc' 'tests/*.cc' 'bench/*.cc' \
               'tools/**/*.cc' |
    xargs -P "$JOBS" -n 1 clang-tidy -p build-release --quiet
else
  say "clang-tidy not installed; skipping lint pass"
fi

say "all checks passed"
