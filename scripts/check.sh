#!/usr/bin/env bash
# Full static + dynamic gate for the repository:
#   1. Release build, all tests          (build-release), then the
#      dispatch-sensitive suites again under PUMP_FORCE_SCALAR=1 so the
#      interleaved fallback paths stay covered on AVX2 hosts
#   2. ASan+UBSan build, all tests       (build-asan,  PUMP_SANITIZE=address)
#   3. TSan build, concurrency tests     (build-tsan,  PUMP_SANITIZE=thread)
#      plus the servebench --quick --soak fault sweep (concurrent
#      queries, poison, deadlines, cancels; zero hung/lost queries),
#      the deterministic concurrency verifier (build-verify,
#      PUMP_VERIFY=ON: verify_test + verifydump --quick with a >= 1000
#      schedule floor, 100% mutant kills, acyclic lock order), and the
#      shim lint (no raw std:: primitives in verifier-migrated files)
#   4. micro_parallel + micro_engine --quick smoke runs (probe pipeline
#      and fused-vs-plan-IR self-checks)
#   5. modelcheck: both testbed profiles must pass, the broken fixture
#      must fail with named violations; modelcheck --mesh must accept
#      every N-GPU mesh topology profile (ring/crossbar/SLI/P2P/
#      host-bounce) and reject the broken mesh fixture
#   6. plandump over the SSB suite + Q6: every compiled plan must be
#      well-formed JSON that passes structural checks (dense dimensions
#      must select the perfect hash table), and the emitted plans must
#      be byte-identical under PUMP_FORCE_SCALAR=1 (plan choice must not
#      depend on SIMD dispatch)
#   7. tracedump over SSB Q3 with tracing on: the Chrome trace JSON must
#      parse with every B matched by an E, the metrics snapshot must
#      carry the core counter families, the residual report must have a
#      row per pipeline, and span coverage must be >= 95% of wall time;
#      modelcheck --residuals must accept the report
#   8. disabled-tracing overhead guard: micro_engine's instrumented plan
#      IR (spans compiled in, recorder off) must average <= 5% over the
#      uninstrumented fused baseline
#   9. clang-tidy over src/tests/bench/tools (skipped when not installed)
#
# Usage: scripts/check.sh [-j N]
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"
while getopts "j:" opt; do
  case "$opt" in
    j) JOBS="$OPTARG" ;;
    *) echo "usage: $0 [-j N]" >&2; exit 2 ;;
  esac
done

say() { printf '\n==> %s\n' "$*"; }

configure_and_test() {
  local dir="$1" sanitize="$2" test_regex="$3"
  say "configure $dir (PUMP_SANITIZE='$sanitize')"
  cmake -B "$dir" -S . -DCMAKE_BUILD_TYPE=Release \
        -DPUMP_SANITIZE="$sanitize" >/dev/null
  say "build $dir"
  cmake --build "$dir" -j "$JOBS"
  say "test $dir${test_regex:+ (filter: $test_regex)}"
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS" \
        ${test_regex:+-R "$test_regex"}
}

# 1. Release: everything, warnings-as-errors enforced by the build itself.
configure_and_test build-release "" ""

# 1b. Forced-scalar lane: the same binaries with PUMP_FORCE_SCALAR=1, so
#     the interleaved fallback paths stay exercised on AVX2 hosts (where
#     the auto-dispatch run above took the vector kernels). Scoped to the
#     suites that touch the dispatched probe/partition paths.
say "test build-release (PUMP_FORCE_SCALAR=1: scalar-dispatch fallback)"
PUMP_FORCE_SCALAR=1 ctest --test-dir build-release --output-on-failure \
      -j "$JOBS" -R "hash_test|simd_test|join_test|star_test|plan_test"

# 2. ASan+UBSan: everything, happens-before assertions forced on.
configure_and_test build-asan "address" ""

# 3. TSan: the concurrent scheduler / executor / failover / integration
#    paths, plus the plan-IR golden equivalence suite (its probe
#    pipelines run multi-worker) and the observability layer (per-thread
#    trace rings + counters hammered from all executor workers).
configure_and_test build-tsan "thread" \
  "exec_test|executor_test|engine_test|fault_test|failure_test|integration_test|obs_test|plan_test|server_test|simd_test"

# 3b. Server soak under TSan: >= 8 concurrent queries against the serving
#     engine across workers x fault-probability cells, with poisoned
#     queries, deadlines, client cancels and admission faults in the mix.
#     servebench exits non-zero on any hung/lost query, any completed
#     result that differs from solo execution, or any accounting
#     invariant violation (submitted == admitted + shed + rejected).
say "servebench soak smoke (TSan, --quick): zero hung/lost queries"
./build-tsan/tools/servebench --quick --soak

say "servebench soak smoke (TSan, --quick, PUMP_FORCE_SCALAR=1)"
PUMP_FORCE_SCALAR=1 ./build-tsan/tools/servebench --quick --soak

# 3c. Deterministic concurrency verifier (PUMP_VERIFY=ON): the explorer
#     tests, then verifydump --quick. verifydump exits non-zero when any
#     model fails, any seeded mutant survives, or the lock-order graph
#     has a cycle; the python gate additionally enforces the schedule
#     floor so a silently shrunken suite cannot pass.
say "configure build-verify (PUMP_VERIFY=ON)"
cmake -B build-verify -S . -DCMAKE_BUILD_TYPE=Release \
      -DPUMP_VERIFY=ON >/dev/null
say "build build-verify"
cmake --build build-verify -j "$JOBS"
say "test build-verify (verify_test: explorer, replay, lock order)"
ctest --test-dir build-verify --output-on-failure -R "verify_test"

TMP_DIR="$(mktemp -d)"
trap 'rm -rf "$TMP_DIR"' EXIT

say "verifydump --quick: models clean, 100% mutant kills, acyclic locks"
./build-verify/tools/verifydump --quick > "$TMP_DIR/verify.json"
python3 - "$TMP_DIR/verify.json" <<'PY'
import json
import sys

with open(sys.argv[1]) as f:
    report = json.load(f)
assert report["verify"], "verifydump was built without PUMP_VERIFY"
assert report["clean_pass"], "a clean model run failed"
assert report["schedules_explored"] >= 1000, (
    f"explored only {report['schedules_explored']} distinct schedules; "
    "the quick lane must cover >= 1000")
assert report["mutants_total"] >= 7, report["mutants_total"]
assert report["mutants_killed"] == report["mutants_total"], (
    "surviving mutants: " + ", ".join(
        m["mutation"] for m in report["mutants"] if not m["killed"]))
assert report["lock_order"]["acyclic"], report["lock_order"]
print(f"{report['schedules_explored']} schedules explored, "
      f"{report['mutants_killed']}/{report['mutants_total']} mutants "
      f"killed, lock order acyclic over "
      f"{len(report['lock_order']['nodes'])} classes")
PY

# 3d. Shim lint: the migrated structures must declare their concurrency
#     primitives through the verify:: shims; a raw std:: primitive there
#     is invisible to the model checker. Deliberate exceptions carry a
#     `verify-exempt` comment on the same line.
say "verify shim lint (raw std:: primitives in migrated files)"
MIGRATED_FILES=(
  src/plan/build_cache.h src/plan/build_cache.cc
  src/common/cancel.h
  src/server/query_engine.h src/server/query_engine.cc
  src/exec/morsel.h
  src/exec/work_stealing.h
  src/obs/trace.h src/obs/trace.cc
)
if grep -nE 'std::(mutex|condition_variable|atomic|thread)\b' \
     "${MIGRATED_FILES[@]}" |
   grep -vE 'verify-exempt' |
   grep -vE '^[^:]+:[0-9]+:\s*(//|/?\*)' ; then
  echo "FAIL: raw std:: concurrency primitive in a verifier-migrated" \
       "file (use verify::Mutex/CondVar/Atomic/Thread, or annotate" \
       "the line with 'verify-exempt' and a reason)" >&2
  exit 1
fi
echo "migrated files use verify:: shims only"

# 4. Executor/dispatcher/probe micro bench smoke run (Release, shrunken
#    sizes): the bench self-checks that the probe variants agree and
#    exercises the persistent executor end to end. micro_engine likewise
#    self-checks that the fused path and the plan IR agree bit for bit.

say "micro_parallel smoke run (--quick)"
./build-release/bench/micro_parallel --quick >/dev/null

say "micro_engine smoke run (--quick)"
./build-release/bench/micro_engine --quick \
    --json="$TMP_DIR/micro_engine.json" >/dev/null

# 5. Model linter: the testbeds must be clean, the broken fixture must not.
say "modelcheck: testbed profiles"
./build-release/tools/modelcheck >/dev/null

say "modelcheck: broken fixture must fail"
if ./build-release/tools/modelcheck --profile broken-fixture >/dev/null; then
  echo "FAIL: modelcheck accepted the deliberately broken fixture" >&2
  exit 1
fi
echo "broken fixture rejected, as expected"

# 5b. Mesh lint: every N-GPU topology profile the exchange planner can
#     route over must pass the structural + peering checks; the broken
#     mesh fixture (orphaned GPU, over-electrical host link) must not.
say "modelcheck --mesh: all mesh topology profiles"
./build-release/tools/modelcheck --mesh >/dev/null

say "modelcheck --mesh: broken mesh fixture must fail"
if ./build-release/tools/modelcheck --mesh \
    --profile broken-mesh-fixture >/dev/null; then
  echo "FAIL: modelcheck accepted the deliberately broken mesh fixture" >&2
  exit 1
fi
echo "broken mesh fixture rejected, as expected"

# 6. Plan gate: compile the SSB suite + Q6 to physical plans (plandump
#    already re-checks each plan with plan::ValidatePlan; a malformed
#    plan exits non-zero) and structurally validate the emitted JSON.
say "plandump: SSB suite + Q6 plans must be well-formed"
PLANS_JSON="$TMP_DIR/plans.json"
./build-release/tools/plandump --query all --rows 50000 --policy gpu \
    --json "$PLANS_JSON"
python3 - "$PLANS_JSON" <<'PY'
import json
import sys

with open(sys.argv[1]) as f:
    plans = json.load(f)

assert len(plans) == 4, f"expected 4 plans, got {len(plans)}"
names = [p["query"] for p in plans]
assert names == ["ssb-q1", "ssb-q2", "ssb-q3", "q6"], names
for p in plans:
    pipes = p["pipelines"]
    assert pipes, f"{p['query']}: no pipelines"
    probe = pipes[-1]
    assert probe["type"] == "probe", f"{p['query']}: no probe pipeline"
    ops = probe["operators"]
    assert ops and ops[-1]["op"] == "aggregate", (
        f"{p['query']}: probe pipeline must end in an aggregate")
    builds = [q for q in pipes if q["type"] == "build"]
    assert len(builds) == p["shape"]["joins"], (
        f"{p['query']}: build pipelines != joins")
    for b in builds:
        # Acceptance: dense key domains must select the perfect table
        # (or hybrid past the GPU budget — not exercised at this size).
        if b["key_density"] >= 0.5:
            assert b["hash_table"] == "perfect", (
                f"{p['query']}: dense dimension picked {b['hash_table']}")
        else:
            assert b["hash_table"] == "linear_probing", (
                f"{p['query']}: sparse dimension picked {b['hash_table']}")
print(f"{len(plans)} plans well-formed "
      f"({sum(len(p['pipelines']) for p in plans)} pipelines)")
PY

# 6b. Dispatch-independence guard: plan choice must not depend on the
#     host's SIMD dispatch — the cost model's constants are deliberately
#     static (the probe_simd residual class tracks the real difference),
#     so the compiled plans must be byte-identical under forced scalar.
say "plandump: plans must be bit-identical across dispatch modes"
PUMP_FORCE_SCALAR=1 ./build-release/tools/plandump --query all \
    --rows 50000 --policy gpu --json "$TMP_DIR/plans_scalar.json"
if ! cmp -s "$PLANS_JSON" "$TMP_DIR/plans_scalar.json"; then
  echo "FAIL: compiled plans differ between auto and forced-scalar" \
       "dispatch (the cost model must stay dispatch-independent)" >&2
  diff "$PLANS_JSON" "$TMP_DIR/plans_scalar.json" | head -20 >&2 || true
  exit 1
fi
echo "plans identical under PUMP_FORCE_SCALAR=1"

# 7. Trace gate: run SSB Q3 through the plan IR with the recorder on and
#    validate all three artifacts. Malformed events (unbalanced B/E),
#    missing counter families, an empty residual report, or span coverage
#    below 95% of wall time all fail the gate.
say "tracedump: SSB Q3 trace/metrics/residuals must be well-formed"
./build-release/tools/tracedump --query ssb-q3 --rows 50000 --policy cost \
    --trace-out "$TMP_DIR/trace.json" \
    --metrics-out "$TMP_DIR/metrics.json" \
    --residuals "$TMP_DIR/residuals.json" > "$TMP_DIR/summary.json"
python3 - "$TMP_DIR/summary.json" "$TMP_DIR/trace.json" \
          "$TMP_DIR/metrics.json" "$TMP_DIR/residuals.json" <<'PY'
import json
import sys

with open(sys.argv[1]) as f:
    summary = json.load(f)
assert summary["workers"] >= 2, summary
assert summary["trace_events"] > 0, summary
assert summary["span_coverage"] >= 0.95, (
    f"trace spans cover {summary['span_coverage']:.3f} of wall time, "
    "want >= 0.95")

with open(sys.argv[2]) as f:
    trace = json.load(f)
events = trace["traceEvents"]
assert events, "trace has no events"
depth = {}
for e in events:
    key = (e["pid"], e["tid"])
    assert e["ph"] in ("B", "E", "i", "M"), f"malformed phase: {e}"
    if e["ph"] in ("B", "E", "i"):
        assert isinstance(e["ts"], (int, float)) and "name" in e, e
    if e["ph"] == "B":
        depth[key] = depth.get(key, 0) + 1
    elif e["ph"] == "E":
        depth[key] = depth.get(key, 0) - 1
        assert depth[key] >= 0, f"E without B on thread {key}"
unbalanced = {k: d for k, d in depth.items() if d != 0}
assert not unbalanced, f"unbalanced B/E per thread: {unbalanced}"

with open(sys.argv[3]) as f:
    metrics = json.load(f)
counters = metrics["counters"]
for family in ("exec.tasks_run", "exec.ws.chunk_claims", "fault.checks",
               "transfer.chunks", "plan.queries", "plan.morsels"):
    assert family in counters, f"metrics snapshot missing {family}"
assert counters["plan.queries"] >= 1, counters["plan.queries"]
assert counters["exec.tasks_run"] > 0, counters["exec.tasks_run"]
assert "plan.pipeline_us" in metrics["histograms"], "missing histogram"

with open(sys.argv[4]) as f:
    report = json.load(f)
rows = report["model_residuals"]
assert rows, "residual report has no pipeline rows"
for row in rows:
    for key in ("pipeline", "class", "predicted_s", "measured_s", "ratio"):
        assert key in row, f"residual row missing {key}: {row}"
    assert row["measured_s"] > 0.0, row
print(f"trace OK: {len(events)} events balanced across "
      f"{len(depth)} threads, {len(counters)} counters, "
      f"{len(rows)} residual rows")
PY

say "tracedump: CPU placement must trace spans from >= 2 worker threads"
./build-release/tools/tracedump --query ssb-q3 --rows 50000 --policy cpu \
    > "$TMP_DIR/summary_cpu.json"
python3 - "$TMP_DIR/summary_cpu.json" <<'PY'
import json
import sys

with open(sys.argv[1]) as f:
    summary = json.load(f)
assert summary["trace_threads"] >= 2, (
    f"CPU probe traced {summary['trace_threads']} thread(s); the "
    "work-stealing workers should record into their own rings")
assert summary["span_coverage"] >= 0.95, summary
print(f"{summary['trace_threads']} threads traced, "
      f"coverage {summary['span_coverage']:.4f}")
PY

say "modelcheck: residual report must lint clean (permissive band)"
./build-release/tools/modelcheck --residuals "$TMP_DIR/residuals.json" \
    --residual-band 0:1e9 >/dev/null

# 8. Overhead guard: with the recorder off, the compiled-in span
#    instrumentation must cost <= 5% on average over the uninstrumented
#    fused baseline (per-query numbers are noisy on small hosts, so the
#    gate is on the mean across queries).
say "disabled-tracing overhead guard (mean <= 5%)"
python3 - "$TMP_DIR/micro_engine.json" <<'PY'
import json
import sys

with open(sys.argv[1]) as f:
    records = json.load(f)
overheads = [r["mean"] for r in records
             if r["experiment"] == "engine_plan_overhead_pct"]
assert overheads, "micro_engine emitted no engine_plan_overhead_pct records"
mean = sum(overheads) / len(overheads)
assert mean <= 5.0, (
    f"instrumented-but-disabled plan IR is {mean:+.2f}% over the fused "
    f"baseline on average (per-query: "
    f"{', '.join(f'{o:+.1f}%' for o in overheads)}); ceiling is +5%")
print(f"disabled-tracing overhead: {mean:+.2f}% mean over "
      f"{len(overheads)} queries (ceiling +5%)")
PY

# 9. clang-tidy, when available. The container image may not ship it; the
#    .clang-tidy profile is still enforced wherever the tool exists.
if command -v clang-tidy >/dev/null 2>&1; then
  say "clang-tidy"
  cmake -B build-release -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  git ls-files 'src/*.cc' 'src/**/*.cc' 'tests/*.cc' 'bench/*.cc' \
               'tools/**/*.cc' |
    xargs -P "$JOBS" -n 1 clang-tidy -p build-release --quiet
else
  say "clang-tidy not installed; skipping lint pass"
fi

say "all checks passed"
